//! Versioned on-disk index format with a zero-copy loader.
//!
//! The pipeline rebuilds the whole inverted index from the synthetic
//! corpus on every run, which caps experiments near seed scale. This
//! module persists the retrieval state — term dictionary, the
//! contiguous delta-varint postings buffers from [`crate::postings`],
//! per-document statistics, and the phrase dictionary — into a single
//! binary artifact, and loads it back by wrapping the file bytes in one
//! [`bytes::Bytes`] buffer: every postings list becomes an
//! offset/length *view* into that buffer (mmap-shaped; no per-term
//! reallocation or re-encoding).
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! ┌ header ────────────────────────────────────────────────────────┐
//! │ magic "QGIX" (4)  version u32  meta_fingerprint u64  count u32 │
//! ├ section table (count × 28 bytes) ──────────────────────────────┤
//! │ id u32   offset u64   len u64   checksum u64 (FNV-1a of bytes) │
//! ├────────────────────────────────────────────────────────────────┤
//! │ header_checksum u64 — FNV-1a of header + table                 │
//! ├ section payloads, contiguous, in table order ──────────────────┤
//! │ TERMS · POSTINGS · DOCSTATS · PHRASES · BOUNDS                 │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **TERMS** — term count, cumulative end offsets (u32 each), then
//!   the UTF-8 term bytes concatenated in id order.
//! * **POSTINGS** — term count, per-term directory entries
//!   `(offset u64, len u32, doc_count u32, collection_freq u64)`, then
//!   the concatenated encoded postings blob. Directory offsets are
//!   relative to the blob, so a loaded list is `blob.slice(off..off+len)`.
//! * **DOCSTATS** — document count, total token count, one u32 length
//!   per document.
//! * **PHRASES** — the exported phrase dictionary
//!   ([`crate::engine::SearchEngine::export_phrase_cache`]): per
//!   phrase its words,
//!   delta-varint `(doc, tf)` hits, and the collection probability.
//! * **BOUNDS** (v2) — term count, per-term `(max_tf u32, min_len u32)`
//!   score-bound statistics ([`crate::index::TermBound`]) feeding the
//!   WAND-style pruned search. Stored μ-independently as raw counts;
//!   the loader cross-checks every entry against the validating
//!   postings walk, so a corrupted or crafted bound can never loosen
//!   (or silently tighten) pruning.
//!
//! ## Versioning and integrity
//!
//! `FORMAT_VERSION` is bumped on any layout change. The loader refuses
//! unknown versions outright (no migration — artifacts are caches, the
//! corpus can always be re-indexed), with one deliberate exception:
//! version-1 artifacts (pre-BOUNDS) still load, reconstructing the
//! bounds from the validating postings walk — which computes them
//! anyway — and logging a single notice. An otherwise-valid v1 artifact
//! must never force a rebuild. `meta_fingerprint` identifies the
//! world configuration that produced the index so a cache directory can
//! hold artifacts for several configurations side by side. Integrity is
//! checked *before* any content is trusted: the header checksum covers
//! the header and section table, per-section checksums cover every
//! payload byte, and the file length must equal the last section's end.
//! Checksums only defend against *accidental* corruption (FNV-1a is
//! not collision-resistant), so structural validation backs them up:
//! allocation sizes are clamped to what the bytes can hold, and every
//! postings stream is walked once, allocation-free, at load time
//! (canonical varints, ascending in-bounds doc ids, directory-consistent
//! frequencies) — the query-time decoder can then stay lean. Every
//! failure is a typed [`OndiskError`] — the loader never panics and
//! never silently mis-decodes (see the corruption battery in this
//! module's tests, which flips every byte of an artifact).

use crate::engine::PhraseCacheEntry;
use crate::index::{InvertedIndex, TermBound};
use crate::phrase::PhraseHit;
use crate::postings::{read_varint, write_varint, PostingsList};
use bytes::{BufMut, Bytes, BytesMut};
use querygraph_text::{Interner, TermId};
use std::fmt;
use std::path::Path;

/// File magic: "QGIX" (QueryGraph IndeX).
pub const MAGIC: [u8; 4] = *b"QGIX";

/// Current format version (v2 appended the BOUNDS section). Bumped on
/// any layout change; the loader refuses versions it doesn't know.
pub const FORMAT_VERSION: u32 = 2;

/// The pre-BOUNDS format. Still loadable: the bounds are reconstructed
/// from the validating postings walk (see [`load_index_bytes`]).
pub const LEGACY_FORMAT_VERSION: u32 = 1;

const SEC_TERMS: u32 = 1;
const SEC_POSTINGS: u32 = 2;
const SEC_DOCSTATS: u32 = 3;
const SEC_PHRASES: u32 = 4;
const SEC_BOUNDS: u32 = 5;
const SECTION_IDS: [u32; 5] = [
    SEC_TERMS,
    SEC_POSTINGS,
    SEC_DOCSTATS,
    SEC_PHRASES,
    SEC_BOUNDS,
];
// A v1 artifact is exactly the v2 layout without the trailing BOUNDS
// section, which is what keeps the legacy path one slice away.
const LEGACY_SECTION_IDS: [u32; 4] = [SEC_TERMS, SEC_POSTINGS, SEC_DOCSTATS, SEC_PHRASES];

const HEADER_LEN: usize = 4 + 4 + 8 + 4; // magic + version + fingerprint + count
const TABLE_ENTRY_LEN: usize = 4 + 8 + 8 + 8;

/// Typed loader failure. Corrupted, truncated, or foreign files always
/// surface as one of these — never a panic, never a wrong index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OndiskError {
    /// Reading the file itself failed.
    Io(String),
    /// Fewer bytes than a structure needs.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The format version is neither [`FORMAT_VERSION`] nor
    /// [`LEGACY_FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A checksum did not match its recorded value.
    ChecksumMismatch {
        /// `"header"` or the section name.
        section: &'static str,
    },
    /// A section's offset/length falls outside the file.
    SectionBounds {
        /// The section name.
        section: &'static str,
    },
    /// Structurally invalid content (inconsistent counts, bad UTF-8,
    /// non-canonical varints, …).
    Malformed {
        /// What was inconsistent.
        context: &'static str,
    },
    /// Bytes beyond the last section (appended garbage).
    TrailingBytes {
        /// Where the artifact should end.
        expected_len: usize,
        /// The actual file length.
        actual_len: usize,
    },
    /// The artifact was built for a different world configuration.
    MetaMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint recorded in the artifact.
        found: u64,
    },
}

impl fmt::Display for OndiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OndiskError::Io(e) => write!(f, "index artifact io error: {e}"),
            OndiskError::Truncated { context } => {
                write!(f, "index artifact truncated while reading {context}")
            }
            OndiskError::BadMagic { found } => {
                write!(f, "not an index artifact (magic {found:02x?})")
            }
            OndiskError::UnsupportedVersion { found } => write!(
                f,
                "unsupported index format version {found} \
                 (supported: {LEGACY_FORMAT_VERSION}, {FORMAT_VERSION})"
            ),
            OndiskError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section}")
            }
            OndiskError::SectionBounds { section } => {
                write!(f, "section {section} exceeds file bounds")
            }
            OndiskError::Malformed { context } => {
                write!(f, "malformed index artifact: {context}")
            }
            OndiskError::TrailingBytes {
                expected_len,
                actual_len,
            } => write!(
                f,
                "trailing bytes after index artifact (expected {expected_len}, got {actual_len})"
            ),
            OndiskError::MetaMismatch { expected, found } => write!(
                f,
                "index artifact built for another configuration \
                 (expected fingerprint {expected:#018x}, found {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for OndiskError {}

/// A successfully loaded artifact.
#[derive(Debug)]
pub struct LoadedIndex {
    /// The reconstructed inverted index (postings share the file buffer).
    pub index: InvertedIndex,
    /// The persisted phrase dictionary, ready for
    /// [`crate::engine::SearchEngine::seed_phrase_cache`].
    pub phrases: Vec<PhraseCacheEntry>,
    /// World-configuration fingerprint recorded at write time.
    pub meta_fingerprint: u64,
}

/// FNV-1a 64 — the workspace's standard stable fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ─── writing ────────────────────────────────────────────────────────

/// Encode `index` (and the phrase dictionary) into artifact bytes.
pub fn encode_index(
    index: &InvertedIndex,
    phrases: &[PhraseCacheEntry],
    meta_fingerprint: u64,
) -> Vec<u8> {
    assemble(
        FORMAT_VERSION,
        &[
            (SEC_TERMS, encode_terms(index)),
            (SEC_POSTINGS, encode_postings(index)),
            (SEC_DOCSTATS, encode_docstats(index)),
            (SEC_PHRASES, encode_phrases(phrases)),
            (SEC_BOUNDS, encode_bounds(index)),
        ],
        meta_fingerprint,
    )
}

/// Encode a **legacy v1** artifact (no BOUNDS section). Test-only
/// surface for pinning the v1 compatibility path — production writers
/// always emit the current format.
#[doc(hidden)]
pub fn encode_index_v1(
    index: &InvertedIndex,
    phrases: &[PhraseCacheEntry],
    meta_fingerprint: u64,
) -> Vec<u8> {
    assemble(
        LEGACY_FORMAT_VERSION,
        &[
            (SEC_TERMS, encode_terms(index)),
            (SEC_POSTINGS, encode_postings(index)),
            (SEC_DOCSTATS, encode_docstats(index)),
            (SEC_PHRASES, encode_phrases(phrases)),
        ],
        meta_fingerprint,
    )
}

fn assemble(version: u32, sections: &[(u32, Vec<u8>)], meta_fingerprint: u64) -> Vec<u8> {
    let table_len = sections.len() * TABLE_ENTRY_LEN;
    let payload_base = HEADER_LEN + table_len + 8; // + header checksum
    let mut head = BytesMut::with_capacity(payload_base);
    head.put_slice(&MAGIC);
    head.put_u32_le(version);
    head.put_u64_le(meta_fingerprint);
    head.put_u32_le(sections.len() as u32);
    let mut offset = payload_base as u64;
    for (id, payload) in sections {
        head.put_u32_le(*id);
        head.put_u64_le(offset);
        head.put_u64_le(payload.len() as u64);
        head.put_u64_le(fnv1a(payload));
        offset += payload.len() as u64;
    }
    let header_checksum = fnv1a(&head);

    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(&head);
    out.extend_from_slice(&header_checksum.to_le_bytes());
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    out
}

/// Write the artifact to `path` (via [`encode_index`]), atomically.
pub fn save_index(
    path: &Path,
    index: &InvertedIndex,
    phrases: &[PhraseCacheEntry],
    meta_fingerprint: u64,
) -> std::io::Result<()> {
    write_atomic(path, &encode_index(index, phrases, meta_fingerprint))
}

/// Write `bytes` to `path` via a same-directory temp file + rename.
///
/// Never truncates or mutates the destination inode in place: a
/// concurrent reader — in particular a long-lived server that
/// *memory-mapped* the old artifact ([`ArtifactSource::Mmap`]) — keeps
/// its old inode alive and intact, instead of having pages shrink
/// (SIGBUS) or silently change under an already-validated mapping.
/// Also means a crashed write leaves the old artifact, not half a new
/// one.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

// The encoders build `Vec<u8>` directly (via the shim's
// `BufMut for Vec<u8>`, mirroring the real crate) so `encode_index`
// assembles the artifact with exactly one copy per payload byte — at
// stress scale the phrase dictionary alone is several MB.

fn encode_terms(index: &InvertedIndex) -> Vec<u8> {
    let interner = index.interner();
    let mut b = Vec::new();
    b.put_u32_le(interner.len() as u32);
    let mut end = 0u32;
    for (_, term) in interner.iter() {
        end += term.len() as u32;
        b.put_u32_le(end);
    }
    for (_, term) in interner.iter() {
        b.put_slice(term.as_bytes());
    }
    b
}

fn encode_postings(index: &InvertedIndex) -> Vec<u8> {
    let n = index.num_terms();
    let mut b = Vec::new();
    b.put_u32_le(n as u32);
    let mut offset = 0u64;
    for t in 0..n {
        let list = index.postings(TermId(t as u32));
        b.put_u64_le(offset);
        b.put_u32_le(list.encoded_len() as u32);
        b.put_u32_le(list.doc_count());
        b.put_u64_le(list.collection_freq());
        offset += list.encoded_len() as u64;
    }
    for t in 0..n {
        b.put_slice(index.postings(TermId(t as u32)).encoded_bytes());
    }
    b
}

fn encode_docstats(index: &InvertedIndex) -> Vec<u8> {
    let mut b = Vec::new();
    b.put_u32_le(index.num_docs() as u32);
    b.put_u64_le(index.total_tokens());
    for &len in index.doc_lengths() {
        b.put_u32_le(len);
    }
    b
}

fn encode_bounds(index: &InvertedIndex) -> Vec<u8> {
    let n = index.num_terms();
    let mut b = Vec::with_capacity(4 + n * 8);
    b.put_u32_le(n as u32);
    for t in 0..n {
        let bound = index.term_bound(TermId(t as u32));
        b.put_u32_le(bound.max_tf);
        b.put_u32_le(bound.min_len);
    }
    b
}

fn encode_phrases(phrases: &[PhraseCacheEntry]) -> Vec<u8> {
    let mut b = Vec::new();
    b.put_u32_le(phrases.len() as u32);
    for p in phrases {
        b.put_u32_le(p.words.len() as u32);
        for w in &p.words {
            b.put_u32_le(w.len() as u32);
            b.put_slice(w.as_bytes());
        }
        b.put_u32_le(p.hits.len() as u32);
        let mut last_doc = 0u32;
        for (i, h) in p.hits.iter().enumerate() {
            let delta = if i == 0 { h.doc } else { h.doc - last_doc };
            last_doc = h.doc;
            write_varint(&mut b, delta);
            write_varint(&mut b, h.tf);
        }
        b.put_u64_le(p.collection_prob.to_bits());
    }
    b
}

// ─── loading ────────────────────────────────────────────────────────

/// How artifact bytes reach memory.
///
/// The format is offset/length-shaped precisely so the buffer's origin
/// doesn't matter: every postings list is a view into one `Bytes`,
/// whether that wraps a heap read or a mapped file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArtifactSource {
    /// Read the whole file into memory once (the default).
    #[default]
    Read,
    /// Memory-map the file (opt-in; unix only). Falls back to
    /// [`ArtifactSource::Read`] on **any** mapping error — including
    /// unsupported platforms — so the knob can only change paging
    /// behaviour, never correctness or availability.
    Mmap,
}

impl ArtifactSource {
    /// Lower-case name for logs and records.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactSource::Read => "read",
            ArtifactSource::Mmap => "mmap",
        }
    }
}

/// The artifact's bytes via the selected source. `Mmap` falls back to a
/// plain read on any error.
pub fn artifact_bytes(path: &Path, source: ArtifactSource) -> Result<Bytes, OndiskError> {
    if source == ArtifactSource::Mmap {
        if let Ok(bytes) = crate::mmap::map_file(path) {
            return Ok(bytes);
        }
    }
    let data = std::fs::read(path).map_err(|e| OndiskError::Io(e.to_string()))?;
    Ok(Bytes::from(data))
}

/// Load an artifact from `path`. IO failures map to [`OndiskError::Io`].
pub fn load_index(path: &Path) -> Result<LoadedIndex, OndiskError> {
    load_index_with(path, ArtifactSource::Read)
}

/// [`load_index`] with an explicit byte source ([`ArtifactSource`]).
/// With `Mmap`, postings become zero-copy views into the mapping —
/// pages fault in on demand instead of being copied up front.
pub fn load_index_with(path: &Path, source: ArtifactSource) -> Result<LoadedIndex, OndiskError> {
    load_index_bytes(artifact_bytes(path, source)?)
}

/// Decode an artifact from an in-memory buffer. Postings lists become
/// zero-copy views into `data`.
pub fn load_index_bytes(data: Bytes) -> Result<LoadedIndex, OndiskError> {
    // Header.
    if data.len() < HEADER_LEN {
        return Err(OndiskError::Truncated { context: "header" });
    }
    if data[0..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&data[0..4]);
        return Err(OndiskError::BadMagic { found });
    }
    let version = read_u32_at(&data, 4);
    let expected_ids: &[u32] = match version {
        FORMAT_VERSION => &SECTION_IDS,
        LEGACY_FORMAT_VERSION => &LEGACY_SECTION_IDS,
        found => return Err(OndiskError::UnsupportedVersion { found }),
    };
    let meta_fingerprint = read_u64_at(&data, 8);
    let count = read_u32_at(&data, 16) as usize;
    if count != expected_ids.len() {
        return Err(OndiskError::Malformed {
            context: "section count",
        });
    }

    // Section table + header checksum.
    let table_end = HEADER_LEN + count * TABLE_ENTRY_LEN;
    if data.len() < table_end + 8 {
        return Err(OndiskError::Truncated {
            context: "section table",
        });
    }
    let recorded = read_u64_at(&data, table_end);
    if fnv1a(&data[..table_end]) != recorded {
        return Err(OndiskError::ChecksumMismatch { section: "header" });
    }

    // Sections: exactly the known ids, in order, within bounds, with
    // matching checksums; the file ends where the last section does.
    let mut sections: Vec<Bytes> = Vec::with_capacity(count);
    let mut expected_end = table_end + 8;
    for (i, &want_id) in expected_ids.iter().enumerate() {
        let base = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let id = read_u32_at(&data, base);
        let name = section_name(want_id);
        if id != want_id {
            return Err(OndiskError::Malformed {
                context: "section table ids",
            });
        }
        let offset = usize::try_from(read_u64_at(&data, base + 4))
            .map_err(|_| OndiskError::SectionBounds { section: name })?;
        let len = usize::try_from(read_u64_at(&data, base + 12))
            .map_err(|_| OndiskError::SectionBounds { section: name })?;
        let checksum = read_u64_at(&data, base + 20);
        let end = offset
            .checked_add(len)
            .ok_or(OndiskError::SectionBounds { section: name })?;
        if offset != expected_end || end > data.len() {
            return Err(OndiskError::SectionBounds { section: name });
        }
        expected_end = end;
        let payload = data.slice(offset..end);
        if fnv1a(&payload) != checksum {
            return Err(OndiskError::ChecksumMismatch { section: name });
        }
        sections.push(payload);
    }
    if expected_end != data.len() {
        return Err(OndiskError::TrailingBytes {
            expected_len: expected_end,
            actual_len: data.len(),
        });
    }

    let interner = decode_terms(&sections[0])?;
    // Docstats first: postings validation bounds doc ids (and reads doc
    // lengths for the score bounds) through `doc_lengths`.
    let (doc_lengths, total_tokens) = decode_docstats(&sections[2])?;
    let (postings, walked_bounds) = decode_postings(&sections[1], interner.len(), &doc_lengths)?;
    let phrases = decode_phrases(&sections[3], doc_lengths.len() as u32)?;
    let bounds = match version {
        FORMAT_VERSION => {
            // The stored bounds must agree entry-for-entry with what the
            // validating postings walk just recomputed — a checksum-
            // consistent forgery (or writer bug) can neither loosen nor
            // tighten pruning.
            let stored = decode_bounds(&sections[4], interner.len())?;
            if stored != walked_bounds {
                return Err(OndiskError::Malformed {
                    context: "bounds section inconsistent with postings",
                });
            }
            stored
        }
        _ => {
            // Legacy v1 artifact: no BOUNDS section. The validating walk
            // already derived the exact bounds, so the artifact stays
            // valid as-is — one notice, never a rebuild.
            eprintln!(
                "notice: index artifact uses legacy format v{LEGACY_FORMAT_VERSION} \
                 (no bounds section); pruning bounds recomputed at load"
            );
            walked_bounds
        }
    };
    Ok(LoadedIndex {
        index: InvertedIndex::from_parts(interner, postings, bounds, doc_lengths, total_tokens),
        phrases,
        meta_fingerprint,
    })
}

fn section_name(id: u32) -> &'static str {
    match id {
        SEC_TERMS => "terms",
        SEC_POSTINGS => "postings",
        SEC_DOCSTATS => "docstats",
        SEC_PHRASES => "phrases",
        SEC_BOUNDS => "bounds",
        _ => "unknown",
    }
}

fn read_u32_at(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64_at(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("bounds checked"))
}

/// Bounds-checked sequential reader over one section payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8], context: &'static str) -> Cursor<'a> {
        Cursor {
            data,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], OndiskError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(OndiskError::Truncated {
                context: self.context,
            })?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, OndiskError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, OndiskError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn varint(&mut self) -> Result<u32, OndiskError> {
        read_varint(self.data, &mut self.pos).ok_or(OndiskError::Malformed {
            context: self.context,
        })
    }

    /// Safe pre-allocation for `n` upcoming entries of at least
    /// `min_entry_len` bytes each: never more than the remaining bytes
    /// could possibly hold, so a crafted count (e.g. `0xFFFF_FFFF` with
    /// a recomputed checksum — FNV-1a only defends against *accidental*
    /// corruption) cannot force a giant allocation. Decoding still
    /// fails with a typed error when the entries don't materialize.
    fn capacity(&self, n: usize, min_entry_len: usize) -> usize {
        n.min((self.data.len() - self.pos) / min_entry_len.max(1))
    }

    fn finish(&self) -> Result<(), OndiskError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(OndiskError::Malformed {
                context: self.context,
            })
        }
    }
}

fn decode_terms(section: &[u8]) -> Result<Interner, OndiskError> {
    let mut c = Cursor::new(section, "terms section");
    let n = c.u32()? as usize;
    let mut ends = Vec::with_capacity(c.capacity(n, 4));
    let mut last = 0u32;
    for _ in 0..n {
        let end = c.u32()?;
        if end < last {
            return Err(OndiskError::Malformed {
                context: "term offsets not ascending",
            });
        }
        ends.push(end);
        last = end;
    }
    let blob = c.take(last as usize)?;
    c.finish()?;
    let mut interner = Interner::with_capacity(n);
    let mut start = 0usize;
    for &end in &ends {
        let term = std::str::from_utf8(&blob[start..end as usize]).map_err(|_| {
            OndiskError::Malformed {
                context: "term not utf-8",
            }
        })?;
        let id = interner.intern(term);
        if id.index() + 1 != interner.len() {
            return Err(OndiskError::Malformed {
                context: "duplicate term in dictionary",
            });
        }
        start = end as usize;
    }
    Ok(interner)
}

fn decode_postings(
    section: &Bytes,
    num_terms: usize,
    doc_lengths: &[u32],
) -> Result<(Vec<PostingsList>, Vec<TermBound>), OndiskError> {
    let mut c = Cursor::new(section, "postings section");
    let n = c.u32()? as usize;
    if n != num_terms {
        return Err(OndiskError::Malformed {
            context: "postings/terms count mismatch",
        });
    }
    struct Dir {
        offset: u64,
        len: u32,
        doc_count: u32,
        collection_freq: u64,
    }
    let mut dirs = Vec::with_capacity(c.capacity(n, 24));
    for _ in 0..n {
        dirs.push(Dir {
            offset: c.u64()?,
            len: c.u32()?,
            doc_count: c.u32()?,
            collection_freq: c.u64()?,
        });
    }
    let blob_base = c.pos;
    let blob_len = section.len() - blob_base;
    let mut lists = Vec::with_capacity(n);
    let mut bounds = Vec::with_capacity(n);
    for d in &dirs {
        let off = usize::try_from(d.offset).map_err(|_| OndiskError::Malformed {
            context: "postings offset overflow",
        })?;
        let end = off
            .checked_add(d.len as usize)
            .filter(|&e| e <= blob_len)
            .ok_or(OndiskError::Malformed {
                context: "postings entry out of blob bounds",
            })?;
        // Zero-copy: the list's data is a view into the file buffer.
        let data = section.slice(blob_base + off..blob_base + end);
        // One linear, allocation-free pass over the stream: checksums
        // only defend against accidental corruption, so a *crafted*
        // artifact could otherwise smuggle wrapping doc deltas or a
        // giant tf into the trusting query-time decoder. After this,
        // `PostingsIter` can stay lean. The same pass derives the
        // term's exact score-bound statistics as a byproduct — ground
        // truth for the BOUNDS section (v2) or its reconstruction (v1).
        let stats = crate::postings::validate_stream(&data, d.doc_count, doc_lengths).ok_or(
            OndiskError::Malformed {
                context: "postings stream invalid",
            },
        )?;
        if stats.cf != d.collection_freq {
            return Err(OndiskError::Malformed {
                context: "postings collection frequency mismatch",
            });
        }
        bounds.push(TermBound {
            max_tf: stats.max_tf,
            min_len: stats.min_len,
        });
        lists.push(PostingsList::from_encoded(
            data,
            d.doc_count,
            d.collection_freq,
        ));
    }
    Ok((lists, bounds))
}

fn decode_bounds(section: &[u8], num_terms: usize) -> Result<Vec<TermBound>, OndiskError> {
    let mut c = Cursor::new(section, "bounds section");
    let n = c.u32()? as usize;
    if n != num_terms {
        return Err(OndiskError::Malformed {
            context: "bounds/terms count mismatch",
        });
    }
    let mut out = Vec::with_capacity(c.capacity(n, 8));
    for _ in 0..n {
        out.push(TermBound {
            max_tf: c.u32()?,
            min_len: c.u32()?,
        });
    }
    c.finish()?;
    Ok(out)
}

fn decode_docstats(section: &[u8]) -> Result<(Vec<u32>, u64), OndiskError> {
    let mut c = Cursor::new(section, "docstats section");
    let n = c.u32()? as usize;
    let total_tokens = c.u64()?;
    let mut doc_lengths = Vec::with_capacity(c.capacity(n, 4));
    for _ in 0..n {
        doc_lengths.push(c.u32()?);
    }
    c.finish()?;
    Ok((doc_lengths, total_tokens))
}

fn decode_phrases(section: &[u8], num_docs: u32) -> Result<Vec<PhraseCacheEntry>, OndiskError> {
    let mut c = Cursor::new(section, "phrases section");
    let n = c.u32()? as usize;
    // Minimal phrase entry: word count + one word length + hit count
    // + collection prob = 20 bytes.
    let mut out = Vec::with_capacity(c.capacity(n, 20));
    for _ in 0..n {
        let n_words = c.u32()? as usize;
        if n_words == 0 {
            return Err(OndiskError::Malformed {
                context: "empty phrase",
            });
        }
        let mut words = Vec::with_capacity(c.capacity(n_words, 4));
        for _ in 0..n_words {
            let len = c.u32()? as usize;
            let word = std::str::from_utf8(c.take(len)?).map_err(|_| OndiskError::Malformed {
                context: "phrase word not utf-8",
            })?;
            words.push(word.to_owned());
        }
        let n_hits = c.u32()? as usize;
        let mut hits = Vec::with_capacity(c.capacity(n_hits, 2));
        let mut last_doc = 0u32;
        // Structural validation, like `validate_stream` for postings:
        // these hits are seeded straight into the engine's phrase cache
        // and then indexed into per-doc tables, so a crafted entry with
        // an out-of-range doc id would panic at query time, and a
        // duplicate doc, zero tf, or non-finite probability would
        // silently poison scores.
        for i in 0..n_hits {
            let delta = c.varint()?;
            let tf = c.varint()?;
            let doc = if i == 0 {
                delta
            } else {
                if delta == 0 {
                    return Err(OndiskError::Malformed {
                        context: "phrase hit docs not ascending",
                    });
                }
                last_doc.checked_add(delta).ok_or(OndiskError::Malformed {
                    context: "phrase hit doc overflow",
                })?
            };
            if doc >= num_docs {
                return Err(OndiskError::Malformed {
                    context: "phrase hit doc out of range",
                });
            }
            if tf == 0 {
                return Err(OndiskError::Malformed {
                    context: "phrase hit with zero tf",
                });
            }
            last_doc = doc;
            hits.push(PhraseHit { doc, tf });
        }
        let collection_prob = f64::from_bits(c.u64()?);
        if !collection_prob.is_finite() || !(0.0..=1.0).contains(&collection_prob) {
            return Err(OndiskError::Malformed {
                context: "phrase collection probability out of range",
            });
        }
        out.push(PhraseCacheEntry {
            words,
            hits,
            collection_prob,
        });
    }
    c.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::index::IndexBuilder;
    use crate::query_lang::parse;

    fn small_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("a gondola on the grand canal of venice");
        b.add_document("the grand hotel beside a small canal");
        b.add_document("");
        b.add_document("venice has many bridges and one grand canal");
        b.build()
    }

    fn artifact() -> Vec<u8> {
        let engine = SearchEngine::new(small_index());
        engine.search(&parse("#1(grand canal)").unwrap(), 5);
        engine.search(&parse("#1(venice)").unwrap(), 5);
        let phrases = engine.export_phrase_cache();
        encode_index(engine.index(), &phrases, 0xFEED_F00D)
    }

    fn assert_index_eq(a: &InvertedIndex, b: &InvertedIndex) {
        assert_eq!(a.num_docs(), b.num_docs());
        assert_eq!(a.num_terms(), b.num_terms());
        assert_eq!(a.total_tokens(), b.total_tokens());
        for d in 0..a.num_docs() as u32 {
            assert_eq!(a.doc_len(d), b.doc_len(d));
        }
        for t in 0..a.num_terms() {
            let t = TermId(t as u32);
            assert_eq!(a.interner().resolve(t), b.interner().resolve(t));
            let pa = a.postings(t);
            let pb = b.postings(t);
            assert_eq!(pa.doc_count(), pb.doc_count());
            assert_eq!(pa.collection_freq(), pb.collection_freq());
            assert_eq!(pa.iter().collect::<Vec<_>>(), pb.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let built = small_index();
        let engine = SearchEngine::new(built);
        engine.search(&parse("#1(grand canal)").unwrap(), 5);
        let phrases = engine.export_phrase_cache();
        let bytes = encode_index(engine.index(), &phrases, 42);
        let loaded = load_index_bytes(Bytes::from(bytes)).expect("round trip");
        assert_eq!(loaded.meta_fingerprint, 42);
        assert_eq!(loaded.phrases, phrases);
        assert_index_eq(engine.index(), &loaded.index);
    }

    #[test]
    fn loaded_engine_searches_identically() {
        let engine = SearchEngine::new(small_index());
        let bytes = encode_index(engine.index(), &[], 0);
        let loaded = load_index_bytes(Bytes::from(bytes)).expect("loads");
        let loaded_engine = SearchEngine::new(loaded.index);
        for q in [
            "#1(grand canal)",
            "#combine(#1(grand canal) venice)",
            "#weight(0.9 venice 0.1 canal)",
            "the",
        ] {
            let q = parse(q).unwrap();
            assert_eq!(engine.search(&q, 10), loaded_engine.search(&q, 10), "{q:?}");
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = IndexBuilder::new().build();
        let bytes = encode_index(&idx, &[], 7);
        let loaded = load_index_bytes(Bytes::from(bytes)).expect("empty loads");
        assert_eq!(loaded.index.num_docs(), 0);
        assert_eq!(loaded.index.num_terms(), 0);
        assert!(loaded.phrases.is_empty());
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join("querygraph-ondisk-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.qgidx");
        let idx = small_index();
        save_index(&path, &idx, &[], 9).expect("saves");
        let loaded = load_index(&path).expect("loads");
        assert_eq!(loaded.meta_fingerprint, 9);
        assert_index_eq(&idx, &loaded.index);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_index(Path::new("/nonexistent/nope.qgidx")).unwrap_err();
        assert!(matches!(err, OndiskError::Io(_)), "{err:?}");
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = artifact();
        bytes[0..4].copy_from_slice(b"NOPE");
        assert_eq!(
            load_index_bytes(Bytes::from(bytes)).unwrap_err(),
            OndiskError::BadMagic { found: *b"NOPE" }
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = artifact();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            load_index_bytes(Bytes::from(bytes)).unwrap_err(),
            OndiskError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn legacy_v1_artifact_loads_with_recomputed_bounds() {
        // A pre-BOUNDS artifact must keep loading — bounds come from
        // the validating postings walk instead of a stored section —
        // and must behave identically to a freshly written v2 artifact.
        let engine = SearchEngine::new(small_index());
        engine.search(&parse("#1(grand canal)").unwrap(), 5);
        let phrases = engine.export_phrase_cache();
        let v1 = encode_index_v1(engine.index(), &phrases, 0xFEED_F00D);
        let loaded = load_index_bytes(Bytes::from(v1)).expect("legacy v1 loads");
        assert_eq!(loaded.meta_fingerprint, 0xFEED_F00D);
        assert_eq!(loaded.phrases, phrases);
        assert_index_eq(engine.index(), &loaded.index);
        for t in 0..engine.index().num_terms() {
            let t = TermId(t as u32);
            assert_eq!(
                loaded.index.term_bound(t),
                engine.index().term_bound(t),
                "recomputed bound for term {t:?}"
            );
        }
        assert_eq!(loaded.index.min_doc_len(), engine.index().min_doc_len());
        // Its corruption story is intact too: every single-byte flip of
        // the legacy artifact still fails typed.
        let v1 = encode_index_v1(engine.index(), &phrases, 0xFEED_F00D);
        for i in 0..v1.len() {
            let mut corrupt = v1.clone();
            corrupt[i] ^= 0xFF;
            assert!(
                load_index_bytes(Bytes::from(corrupt)).is_err(),
                "v1 flip at byte {i} must fail, not load"
            );
        }
    }

    #[test]
    fn loaded_bounds_match_built_bounds() {
        let idx = small_index();
        let bytes = encode_index(&idx, &[], 0);
        let loaded = load_index_bytes(Bytes::from(bytes)).expect("loads");
        for t in 0..idx.num_terms() {
            let t = TermId(t as u32);
            assert_eq!(loaded.index.term_bound(t), idx.term_bound(t));
        }
        assert_eq!(loaded.index.min_doc_len(), idx.min_doc_len());
    }

    #[test]
    fn lying_bounds_section_rejected() {
        // Checksums can be recomputed by a forger; the loader must
        // still reject a bounds section that disagrees with the
        // postings (it would silently mis-prune).
        let idx = small_index();
        let craft = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bounds = encode_bounds(&idx);
            mutate(&mut bounds);
            assemble(
                FORMAT_VERSION,
                &[
                    (SEC_TERMS, encode_terms(&idx)),
                    (SEC_POSTINGS, encode_postings(&idx)),
                    (SEC_DOCSTATS, encode_docstats(&idx)),
                    (SEC_PHRASES, encode_phrases(&[])),
                    (SEC_BOUNDS, bounds),
                ],
                0,
            )
        };
        // Loosened max_tf of term 0 (first u32 after the count).
        let loose = craft(&|b| b[4..8].copy_from_slice(&u32::MAX.to_le_bytes()));
        assert_eq!(
            load_index_bytes(Bytes::from(loose)).unwrap_err(),
            OndiskError::Malformed {
                context: "bounds section inconsistent with postings",
            }
        );
        // Tightened min_len of term 0 (would over-prune).
        let tight = craft(&|b| b[8..12].copy_from_slice(&u32::MAX.to_le_bytes()));
        assert_eq!(
            load_index_bytes(Bytes::from(tight)).unwrap_err(),
            OndiskError::Malformed {
                context: "bounds section inconsistent with postings",
            }
        );
        // Wrong count.
        let short = craft(&|b| {
            let n = u32::from_le_bytes(b[0..4].try_into().unwrap());
            b[0..4].copy_from_slice(&(n - 1).to_le_bytes());
            b.truncate(b.len() - 8);
        });
        assert_eq!(
            load_index_bytes(Bytes::from(short)).unwrap_err(),
            OndiskError::Malformed {
                context: "bounds/terms count mismatch",
            }
        );
        // Untampered control still loads.
        let good = craft(&|_| {});
        load_index_bytes(Bytes::from(good)).expect("consistent bounds load");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = artifact();
        bytes.push(0xAB);
        assert!(matches!(
            load_index_bytes(Bytes::from(bytes)).unwrap_err(),
            OndiskError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let bytes = artifact();
        for len in 0..bytes.len() {
            let result = load_index_bytes(Bytes::from(bytes[..len].to_vec()));
            assert!(
                result.is_err(),
                "truncation to {len}/{} bytes must fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_byte_flip_errors_never_panics() {
        // The corruption battery: flipping any single byte anywhere in
        // the artifact must produce a typed error. Header and table are
        // covered by the header checksum, payloads by their section
        // checksums, the fingerprint by the header checksum, and
        // appended bytes by the length check — so no flip can load.
        let bytes = artifact();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let result = load_index_bytes(Bytes::from(corrupt));
            assert!(result.is_err(), "flip at byte {i} must fail, not load");
        }
    }

    #[test]
    fn crafted_phrase_entries_rejected_at_load() {
        // A forger can recompute FNV-1a checksums, so structural
        // validation must catch phrase entries that would panic or
        // poison scores at query time.
        let idx = small_index(); // 4 docs
        let entry = |hits: Vec<PhraseHit>, prob: f64| PhraseCacheEntry {
            words: vec!["grand".into(), "canal".into()],
            hits,
            collection_prob: prob,
        };
        let cases = [
            // Hit doc beyond the collection (would index OOB in the
            // workspace's doc_len lookup).
            entry(vec![PhraseHit { doc: 4, tf: 1 }], 0.01),
            // Duplicate / non-ascending hit docs.
            entry(
                vec![PhraseHit { doc: 1, tf: 1 }, PhraseHit { doc: 1, tf: 1 }],
                0.01,
            ),
            // Zero tf.
            entry(vec![PhraseHit { doc: 1, tf: 0 }], 0.01),
            // Non-finite / out-of-range collection probability.
            entry(vec![PhraseHit { doc: 1, tf: 1 }], f64::NAN),
            entry(vec![PhraseHit { doc: 1, tf: 1 }], 2.0),
        ];
        for (i, bad) in cases.into_iter().enumerate() {
            let bytes = encode_index(&idx, std::slice::from_ref(&bad), 0);
            let err = load_index_bytes(Bytes::from(bytes));
            assert!(
                matches!(err, Err(OndiskError::Malformed { .. })),
                "crafted phrase case {i} must be rejected, got {err:?}"
            );
        }
        // A well-formed entry still loads.
        let good = entry(vec![PhraseHit { doc: 1, tf: 2 }], 0.01);
        let bytes = encode_index(&idx, std::slice::from_ref(&good), 0);
        let loaded = load_index_bytes(Bytes::from(bytes)).expect("good entry loads");
        assert_eq!(loaded.phrases, vec![good]);
    }

    #[test]
    fn single_bit_flips_in_checksums_and_counts_error() {
        // Denser probe around the most safety-critical fields: every
        // bit of the header (version, fingerprint, section count) and
        // of the first table entry.
        let bytes = artifact();
        let probe = HEADER_LEN + TABLE_ENTRY_LEN;
        for byte in 4..probe {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    load_index_bytes(Bytes::from(corrupt)).is_err(),
                    "bit {bit} of byte {byte} must not load"
                );
            }
        }
    }

    proptest::proptest! {
        /// Write → load is lossless for arbitrary indexed content.
        #[test]
        fn round_trip_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..8, 0..40),
                0..12,
            ),
            fingerprint in 0u64..=u64::MAX,
        ) {
            const VOCAB: [&str; 8] = [
                "alpha", "beta", "gamma", "delta",
                "epsilon", "zeta", "eta", "theta",
            ];
            let mut b = IndexBuilder::new();
            for d in &docs {
                let text: Vec<&str> =
                    d.iter().map(|&x| VOCAB[x as usize]).collect();
                b.add_document(&text.join(" "));
            }
            let idx = b.build();
            let engine = SearchEngine::new(idx);
            engine.search(&parse("#1(alpha beta)").unwrap(), 5);
            let phrases = engine.export_phrase_cache();
            let bytes = encode_index(engine.index(), &phrases, fingerprint);
            let loaded = load_index_bytes(Bytes::from(bytes)).expect("loads");
            proptest::prop_assert_eq!(loaded.meta_fingerprint, fingerprint);
            proptest::prop_assert_eq!(&loaded.phrases, &phrases);
            assert_index_eq(engine.index(), &loaded.index);
        }
    }
}
