//! The INDRI-like query language: parser and AST.
//!
//! Supported subset (everything the paper's pipeline emits, §2.2):
//!
//! ```text
//! query    := node+                      (implicit #combine)
//! node     := term
//!           | '#1(' term+ ')'            exact phrase
//!           | '#combine(' node+ ')'      average of log-beliefs
//!           | '#weight(' (num node)+ ')' weighted average
//! ```
//!
//! Terms are normalized with the shared text pipeline, so `#1(Grand
//! Canal)` and `#1(grand canal)` are the same query.

use querygraph_text::tokenize;
use std::fmt;

/// Parsed query AST.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryNode {
    /// A single term.
    Term(String),
    /// `#1(...)`: exact phrase of ≥1 terms.
    Phrase(Vec<String>),
    /// `#combine(...)`: uniform average of children's log-beliefs.
    Combine(Vec<QueryNode>),
    /// `#weight(w1 n1 w2 n2 …)`: weighted average.
    Weight(Vec<(f64, QueryNode)>),
}

impl QueryNode {
    /// Build the paper's ground-truth query: a `#combine` of exact title
    /// phrases ("we use their titles to internally write a query in the
    /// INDRI query language, based on exact phrase matching").
    /// Empty-after-normalization titles are skipped.
    pub fn phrases_of_titles<S: AsRef<str>>(titles: &[S]) -> QueryNode {
        let children: Vec<QueryNode> = titles
            .iter()
            .filter_map(|t| {
                let words = tokenize(t.as_ref());
                if words.is_empty() {
                    None
                } else {
                    Some(QueryNode::Phrase(words))
                }
            })
            .collect();
        QueryNode::Combine(children)
    }

    /// Number of leaf components (terms + phrases).
    pub fn leaf_count(&self) -> usize {
        match self {
            QueryNode::Term(_) | QueryNode::Phrase(_) => 1,
            QueryNode::Combine(c) => c.iter().map(QueryNode::leaf_count).sum(),
            QueryNode::Weight(c) => c.iter().map(|(_, n)| n.leaf_count()).sum(),
        }
    }
}

impl fmt::Display for QueryNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryNode::Term(t) => write!(f, "{t}"),
            QueryNode::Phrase(words) => write!(f, "#1({})", words.join(" ")),
            QueryNode::Combine(children) => {
                write!(f, "#combine(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            QueryNode::Weight(children) => {
                write!(f, "#weight(")?;
                for (i, (w, c)) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{w} {c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn parse_word(&mut self) -> Option<&'a str> {
        let start = self.pos;
        for (i, c) in self.input[self.pos..].char_indices() {
            if c.is_whitespace() || c == '(' || c == ')' || c == '#' {
                self.pos = start + i;
                return (i > 0).then(|| &self.input[start..start + i]);
            }
        }
        self.pos = self.input.len();
        (self.pos > start).then(|| &self.input[start..])
    }

    fn parse_operator(&mut self) -> Result<QueryNode, ParseError> {
        // Called on '#'.
        self.pos += 1;
        let name = self.parse_word().unwrap_or("");
        self.skip_ws();
        if !self.eat('(') {
            return self.error(format!("expected '(' after #{name}"));
        }
        let node = match name {
            "1" => {
                let mut words = Vec::new();
                loop {
                    self.skip_ws();
                    if self.eat(')') {
                        break;
                    }
                    match self.parse_word() {
                        Some(w) => {
                            for normalized in tokenize(w) {
                                words.push(normalized);
                            }
                        }
                        None => return self.error("expected term inside #1(...)"),
                    }
                }
                if words.is_empty() {
                    return self.error("#1() needs at least one term");
                }
                QueryNode::Phrase(words)
            }
            "combine" => {
                let children = self.parse_children()?;
                if children.is_empty() {
                    return self.error("#combine() needs at least one child");
                }
                QueryNode::Combine(children)
            }
            "weight" => {
                let mut pairs = Vec::new();
                loop {
                    self.skip_ws();
                    if self.eat(')') {
                        break;
                    }
                    let w = match self.parse_word() {
                        Some(word) => word.parse::<f64>().map_err(|_| ParseError {
                            offset: self.pos,
                            message: format!("expected weight number, found {word:?}"),
                        })?,
                        None => return self.error("expected weight number"),
                    };
                    self.skip_ws();
                    let child = self.parse_node()?;
                    pairs.push((w, child));
                }
                if pairs.is_empty() {
                    return self.error("#weight() needs at least one pair");
                }
                QueryNode::Weight(pairs)
            }
            other => return self.error(format!("unknown operator #{other}")),
        };
        Ok(node)
    }

    fn parse_children(&mut self) -> Result<Vec<QueryNode>, ParseError> {
        let mut children = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(')') {
                return Ok(children);
            }
            if self.pos >= self.input.len() {
                return self.error("unterminated operator, expected ')'");
            }
            children.push(self.parse_node()?);
        }
    }

    fn parse_node(&mut self) -> Result<QueryNode, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('#') => self.parse_operator(),
            Some(')') => self.error("unexpected ')'"),
            Some(_) => {
                let word = self.parse_word().expect("peeked non-empty");
                let mut toks = tokenize(word);
                match toks.len() {
                    0 => self.error(format!("term {word:?} normalizes to nothing")),
                    1 => Ok(QueryNode::Term(toks.pop().expect("len 1"))),
                    _ => Ok(QueryNode::Phrase(toks)),
                }
            }
            None => self.error("unexpected end of query"),
        }
    }
}

/// Parse a query string. A bare sequence of nodes becomes an implicit
/// `#combine`.
pub fn parse(input: &str) -> Result<QueryNode, ParseError> {
    let mut p = Parser { input, pos: 0 };
    let mut nodes = Vec::new();
    loop {
        p.skip_ws();
        if p.pos >= input.len() {
            break;
        }
        nodes.push(p.parse_node()?);
    }
    match nodes.len() {
        0 => Err(ParseError {
            offset: 0,
            message: "empty query".into(),
        }),
        1 => Ok(nodes.pop().expect("len 1")),
        _ => Ok(QueryNode::Combine(nodes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_terms_become_combine() {
        let q = parse("gondola venice").unwrap();
        assert_eq!(
            q,
            QueryNode::Combine(vec![
                QueryNode::Term("gondola".into()),
                QueryNode::Term("venice".into()),
            ])
        );
    }

    #[test]
    fn single_term() {
        assert_eq!(parse("venice").unwrap(), QueryNode::Term("venice".into()));
    }

    #[test]
    fn phrase_operator() {
        let q = parse("#1(grand canal)").unwrap();
        assert_eq!(q, QueryNode::Phrase(vec!["grand".into(), "canal".into()]));
    }

    #[test]
    fn nested_combine() {
        let q = parse("#combine(#1(grand canal) gondola #combine(a b))").unwrap();
        assert_eq!(q.leaf_count(), 4);
    }

    #[test]
    fn weight_operator() {
        let q = parse("#weight(0.7 venice 0.3 #1(grand canal))").unwrap();
        match q {
            QueryNode::Weight(pairs) => {
                assert_eq!(pairs.len(), 2);
                assert!((pairs[0].0 - 0.7).abs() < 1e-12);
                assert_eq!(
                    pairs[1].1,
                    QueryNode::Phrase(vec!["grand".into(), "canal".into()])
                );
            }
            other => panic!("expected #weight, got {other:?}"),
        }
    }

    #[test]
    fn terms_are_normalized() {
        let q = parse("#1(Grand CANAL)").unwrap();
        assert_eq!(q, QueryNode::Phrase(vec!["grand".into(), "canal".into()]));
    }

    #[test]
    fn hyphenated_bare_word_becomes_phrase() {
        let q = parse("hand-colouring").unwrap();
        assert_eq!(
            q,
            QueryNode::Phrase(vec!["hand".into(), "colouring".into()])
        );
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("#1()").is_err());
        assert!(parse("#combine()").is_err());
        assert!(parse("#bogus(a)").is_err());
        assert!(parse("#combine(a").is_err());
        assert!(parse(")").is_err());
        assert!(parse("#weight(x venice)").is_err());
    }

    #[test]
    fn phrases_of_titles_builds_ground_truth_query() {
        let q = QueryNode::phrases_of_titles(&["Grand Canal (Venice)", "Gondola", "!!!"]);
        assert_eq!(
            q,
            QueryNode::Combine(vec![
                QueryNode::Phrase(vec!["grand".into(), "canal".into(), "venice".into()]),
                QueryNode::Phrase(vec!["gondola".into()]),
            ])
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in [
            "#combine(#1(grand canal) gondola)",
            "#weight(0.5 a 0.5 #1(b c))",
            "#1(bridge of sighs)",
        ] {
            let q = parse(s).unwrap();
            let q2 = parse(&q.to_string()).unwrap();
            assert_eq!(q, q2, "display round trip failed for {s}");
        }
    }
}
