//! LSM-style generational segment store for incrementally grown indexes.
//!
//! The PR-5 sharded artifact is segment-shaped but static: shard count
//! and doc partition are fixed at build time. The paper-scale corpus
//! (237k ImageCLEF docs) arrives as a *dump* that we want to index in
//! bounded memory and keep serving while it grows — so this module adds
//! the missing LSM layer on top of the same `QGIX` segment format:
//!
//! * **Segments** — each ingest batch freezes into one independently
//!   checksummed `QGIX` file (`seg-<seq>.qgidx`, local doc ids), written
//!   atomically and never modified afterwards.
//! * **Generational manifest** — `segstore.qgss` lists the live
//!   segments in global doc-id order. Every publish bumps `generation`
//!   and replaces the manifest via temp + rename: the rename *is* the
//!   commit point. A crash between segment write and manifest swap
//!   leaves orphan segment files that no manifest references — the old
//!   generation still loads cleanly.
//! * **Serving** — a generation's segments are contiguous doc-id
//!   slices, which is exactly what
//!   [`ShardedEngine::from_shards`](crate::sharded::ShardedEngine)
//!   accepts: the generation serves directly as a K-shard engine,
//!   byte-identical to a monolithic build over the same docs (global
//!   stats aggregated once; see `sharded`'s identity argument).
//! * **Compaction** — [`reslice`] merges a generation's postings into N
//!   balanced shards (`doc_ranges` partition) without re-tokenizing:
//!   postings, positions, doc lengths and totals are preserved exactly,
//!   and per-term bounds are recomputed with the builder's formula, so
//!   reports from a compacted index are byte-identical to a from-scratch
//!   rebuild. Compacted output can replace the store's segments
//!   ([`SegStore::replace_segments`]) or be persisted as a standard
//!   `QGSM` sharded artifact for the existing `--shards N` boot paths.
//!
//! Manifest layout (little-endian):
//!
//! ```text
//! magic "QGSS" (4)  version u32  fingerprint u64  generation u64
//! next_seq u64      segment_count u32
//! per segment: seq u64  num_docs u32  total_tokens u64
//! checksum u64 — FNV-1a of every preceding byte
//! ```

use crate::engine::SearchEngine;
use crate::index::{InvertedIndex, TermBound};
use crate::lm::LmParams;
use crate::ondisk::{
    encode_index, fnv1a, load_index_with, write_atomic, ArtifactSource, LoadedIndex, OndiskError,
};
use crate::postings::PostingsBuilder;
use crate::sharded::doc_ranges;
use querygraph_text::{Interner, TermId};
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Manifest magic: "QGSS" (QueryGraph Segment Store).
pub const SEGSTORE_MAGIC: [u8; 4] = *b"QGSS";

/// Manifest format version; the loader refuses other versions.
pub const SEGSTORE_FORMAT_VERSION: u32 = 1;

/// Manifest file name inside a segstore directory.
pub const MANIFEST_FILE: &str = "segstore.qgss";

/// Typed segstore failure. Loading never panics; every error names the
/// failing piece.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegStoreError {
    /// Filesystem-level failure (directory, segment write, ...).
    Io(String),
    /// The manifest failed to read or validate.
    Manifest(OndiskError),
    /// A listed segment failed to load or disagreed with the manifest.
    Segment {
        /// The failing segment's sequence number.
        seq: u64,
        /// The segment loader's typed failure.
        source: OndiskError,
    },
}

impl fmt::Display for SegStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegStoreError::Io(m) => write!(f, "segstore I/O: {m}"),
            SegStoreError::Manifest(e) => write!(f, "segstore manifest: {e}"),
            SegStoreError::Segment { seq, source } => write!(f, "segment {seq}: {source}"),
        }
    }
}

impl std::error::Error for SegStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegStoreError::Io(_) => None,
            SegStoreError::Manifest(e) => Some(e),
            SegStoreError::Segment { source, .. } => Some(source),
        }
    }
}

/// One live segment as listed in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Monotonic sequence number; names the file and keys its embedded
    /// fingerprint.
    pub seq: u64,
    /// Documents in the segment.
    pub num_docs: u32,
    /// Token total of the segment.
    pub total_tokens: u64,
}

/// The decoded generational manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Store fingerprint (world configuration); segments embed a
    /// per-seq derivative of it.
    pub fingerprint: u64,
    /// Publish counter; bumped by every commit.
    pub generation: u64,
    /// Next unused segment sequence number.
    pub next_seq: u64,
    /// Live segments in global doc-id order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Total documents across live segments.
    pub fn total_docs(&self) -> u64 {
        self.segments.iter().map(|s| s.num_docs as u64).sum()
    }

    /// Total tokens across live segments.
    pub fn total_tokens(&self) -> u64 {
        self.segments.iter().map(|s| s.total_tokens).sum()
    }

    /// A fingerprint of this exact generation (store fingerprint,
    /// generation counter, live segment set) — the cache-epoch key that
    /// makes expansions from different generations distinguishable.
    pub fn generation_fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 + self.segments.len() * 8);
        bytes.extend_from_slice(&self.fingerprint.to_le_bytes());
        bytes.extend_from_slice(&self.generation.to_le_bytes());
        for s in &self.segments {
            bytes.extend_from_slice(&s.seq.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    fn encode(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut m: Vec<u8> = Vec::new();
        m.put_slice(&SEGSTORE_MAGIC);
        m.put_u32_le(SEGSTORE_FORMAT_VERSION);
        m.put_u64_le(self.fingerprint);
        m.put_u64_le(self.generation);
        m.put_u64_le(self.next_seq);
        m.put_u32_le(self.segments.len() as u32);
        for s in &self.segments {
            m.put_u64_le(s.seq);
            m.put_u32_le(s.num_docs);
            m.put_u64_le(s.total_tokens);
        }
        let checksum = fnv1a(&m);
        m.put_u64_le(checksum);
        m
    }

    fn decode(m: &[u8]) -> Result<Manifest, OndiskError> {
        const HEAD: usize = 4 + 4 + 8 + 8 + 8 + 4;
        if m.len() < HEAD + 8 {
            return Err(OndiskError::Truncated {
                context: "segstore manifest",
            });
        }
        if m[0..4] != SEGSTORE_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&m[0..4]);
            return Err(OndiskError::BadMagic { found });
        }
        let u32_at =
            |at: usize| u32::from_le_bytes(m[at..at + 4].try_into().expect("bounds checked"));
        let u64_at =
            |at: usize| u64::from_le_bytes(m[at..at + 8].try_into().expect("bounds checked"));
        let version = u32_at(4);
        if version != SEGSTORE_FORMAT_VERSION {
            return Err(OndiskError::UnsupportedVersion { found: version });
        }
        let fingerprint = u64_at(8);
        let generation = u64_at(16);
        let next_seq = u64_at(24);
        let count = u32_at(32) as usize;
        let expected_len = HEAD + count * 20 + 8;
        if m.len() != expected_len {
            return Err(if m.len() < expected_len {
                OndiskError::Truncated {
                    context: "segstore manifest",
                }
            } else {
                OndiskError::TrailingBytes {
                    expected_len,
                    actual_len: m.len(),
                }
            });
        }
        let recorded = u64_at(expected_len - 8);
        if fnv1a(&m[..expected_len - 8]) != recorded {
            return Err(OndiskError::ChecksumMismatch {
                section: "segstore manifest",
            });
        }
        let mut segments = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEAD + i * 20;
            let seq = u64_at(at);
            if seq >= next_seq {
                return Err(OndiskError::Malformed {
                    context: "segment seq beyond next_seq",
                });
            }
            segments.push(SegmentMeta {
                seq,
                num_docs: u32_at(at + 8),
                total_tokens: u64_at(at + 12),
            });
        }
        Ok(Manifest {
            fingerprint,
            generation,
            next_seq,
            segments,
        })
    }
}

/// The embedded fingerprint of segment `seq` in a store keyed by
/// `store_fingerprint` — a renamed or cross-copied segment file is
/// rejected at load.
pub fn segment_fp(store_fingerprint: u64, seq: u64) -> u64 {
    let mut bytes = [0u8; 17];
    bytes[..8].copy_from_slice(&store_fingerprint.to_le_bytes());
    bytes[8..16].copy_from_slice(&seq.to_le_bytes());
    bytes[16] = b'S'; // domain-separate from QGSM's segment_fingerprint
    fnv1a(&bytes)
}

/// Segment file name for a sequence number.
pub fn segment_file(seq: u64) -> String {
    format!("seg-{seq:06}.qgidx")
}

/// Manifest path inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Read and validate the manifest in `dir`; `Ok(None)` when the store
/// has never published (no manifest file).
pub fn read_manifest(
    dir: &Path,
    expected_fingerprint: u64,
) -> Result<Option<Manifest>, SegStoreError> {
    let path = manifest_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SegStoreError::Manifest(OndiskError::Io(e.to_string()))),
    };
    let manifest = Manifest::decode(&bytes).map_err(SegStoreError::Manifest)?;
    if manifest.fingerprint != expected_fingerprint {
        return Err(SegStoreError::Manifest(OndiskError::MetaMismatch {
            expected: expected_fingerprint,
            found: manifest.fingerprint,
        }));
    }
    Ok(Some(manifest))
}

/// A writable segment store rooted at one directory.
///
/// Writes follow the two-phase LSM discipline: [`SegStore::stage_segment`]
/// writes an (unreferenced) segment file, [`SegStore::publish`] appends
/// the staged set to the manifest in one atomic swap. A crash at any
/// point between the two leaves the previous generation intact.
#[derive(Debug)]
pub struct SegStore {
    dir: PathBuf,
    manifest: Manifest,
    /// Next sequence number to hand out to staged segments (runs ahead
    /// of `manifest.next_seq` until publish).
    alloc_seq: u64,
}

impl SegStore {
    /// Open (creating the directory if needed) the store at `dir`,
    /// keyed by the world-configuration `fingerprint`. An existing
    /// manifest with a different fingerprint is a typed error.
    pub fn open(dir: &Path, fingerprint: u64) -> Result<SegStore, SegStoreError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| SegStoreError::Io(format!("{}: {e}", dir.display())))?;
        let manifest = read_manifest(dir, fingerprint)?.unwrap_or(Manifest {
            fingerprint,
            generation: 0,
            next_seq: 0,
            segments: Vec::new(),
        });
        let alloc_seq = manifest.next_seq;
        Ok(SegStore {
            dir: dir.to_path_buf(),
            manifest,
            alloc_seq,
        })
    }

    /// The current (last-published or initial) manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Phase 1: write one batch's index as a new segment file. The
    /// segment is durable but *not live* until [`SegStore::publish`]
    /// lists it — a crash here leaves only an orphan file.
    pub fn stage_segment(&mut self, index: &InvertedIndex) -> Result<SegmentMeta, SegStoreError> {
        let seq = self.alloc_seq;
        let bytes = encode_index(index, &[], segment_fp(self.manifest.fingerprint, seq));
        write_atomic(&self.dir.join(segment_file(seq)), &bytes)
            .map_err(|e| SegStoreError::Io(format!("segment {seq}: {e}")))?;
        self.alloc_seq += 1;
        Ok(SegmentMeta {
            seq,
            num_docs: index.num_docs() as u32,
            total_tokens: index.total_tokens(),
        })
    }

    /// Phase 2: append staged segments to the live set and swap the
    /// manifest atomically (the commit point). Bumps the generation
    /// even when `staged` is empty.
    pub fn publish(&mut self, staged: &[SegmentMeta]) -> Result<&Manifest, SegStoreError> {
        let mut next = self.manifest.clone();
        next.segments.extend_from_slice(staged);
        next.generation += 1;
        next.next_seq = self.alloc_seq;
        self.write_manifest(next)
    }

    /// Convenience: stage one segment and publish it (one generation
    /// bump per batch).
    pub fn commit_segment(&mut self, index: &InvertedIndex) -> Result<SegmentMeta, SegStoreError> {
        let meta = self.stage_segment(index)?;
        self.publish(&[meta])?;
        Ok(meta)
    }

    /// Replace the *entire* live segment set with `staged` (compaction's
    /// commit): atomic manifest swap first, then best-effort removal of
    /// the replaced segment files. Readers holding the old generation
    /// keep their loaded data; new loads see only the new set.
    pub fn replace_segments(&mut self, staged: &[SegmentMeta]) -> Result<&Manifest, SegStoreError> {
        let old: Vec<u64> = self.manifest.segments.iter().map(|s| s.seq).collect();
        let mut next = self.manifest.clone();
        next.segments = staged.to_vec();
        next.generation += 1;
        next.next_seq = self.alloc_seq;
        self.write_manifest(next)?;
        for seq in old {
            if !staged.iter().any(|s| s.seq == seq) {
                std::fs::remove_file(self.dir.join(segment_file(seq))).ok();
            }
        }
        Ok(&self.manifest)
    }

    fn write_manifest(&mut self, next: Manifest) -> Result<&Manifest, SegStoreError> {
        write_atomic(&manifest_path(&self.dir), &next.encode())
            .map_err(|e| SegStoreError::Io(format!("manifest: {e}")))?;
        self.manifest = next;
        Ok(&self.manifest)
    }
}

/// A fully loaded generation: the manifest plus one loaded index per
/// live segment, in global doc-id order.
#[derive(Debug)]
pub struct LoadedGeneration {
    /// The manifest this load observed.
    pub manifest: Manifest,
    /// Loaded segments (index + phrase dictionary), manifest order.
    pub segments: Vec<LoadedIndex>,
}

impl LoadedGeneration {
    /// Wrap every segment in a [`SearchEngine`] (manifest order) — the
    /// shard vector for
    /// [`ShardedEngine::from_shards`](crate::sharded::ShardedEngine::from_shards).
    pub fn into_engines(self, params: LmParams) -> Vec<SearchEngine> {
        self.segments
            .into_iter()
            .map(|l| {
                let engine = SearchEngine::with_params(l.index, params);
                engine.seed_phrase_cache(l.phrases);
                engine
            })
            .collect()
    }
}

/// Load the current generation in `dir`; `Ok(None)` when the store has
/// never published. Each segment is independently checksummed by the
/// `QGIX` loader and pinned to its manifest slot via [`segment_fp`].
pub fn load_generation(
    dir: &Path,
    expected_fingerprint: u64,
    source: ArtifactSource,
) -> Result<Option<LoadedGeneration>, SegStoreError> {
    let Some(manifest) = read_manifest(dir, expected_fingerprint)? else {
        return Ok(None);
    };
    let mut segments = Vec::with_capacity(manifest.segments.len());
    for meta in &manifest.segments {
        let loaded =
            load_index_with(&dir.join(segment_file(meta.seq)), source).map_err(|source| {
                SegStoreError::Segment {
                    seq: meta.seq,
                    source,
                }
            })?;
        let want = segment_fp(manifest.fingerprint, meta.seq);
        if loaded.meta_fingerprint != want {
            return Err(SegStoreError::Segment {
                seq: meta.seq,
                source: OndiskError::MetaMismatch {
                    expected: want,
                    found: loaded.meta_fingerprint,
                },
            });
        }
        if loaded.index.num_docs() != meta.num_docs as usize
            || loaded.index.total_tokens() != meta.total_tokens
        {
            return Err(SegStoreError::Segment {
                seq: meta.seq,
                source: OndiskError::Malformed {
                    context: "segment stats disagree with manifest",
                },
            });
        }
        segments.push(loaded);
    }
    Ok(Some(LoadedGeneration { manifest, segments }))
}

/// Merge `segments` (contiguous doc-id slices in order) into `shards`
/// balanced indexes along the [`doc_ranges`] partition — compaction's
/// core. No re-tokenization: postings, positions, per-doc lengths and
/// token totals are copied exactly; per-term bounds are recomputed with
/// the builder's formula over the copied postings. Scoring reads terms
/// by string and statistics as integer sums, so an engine over the
/// resliced shards is report-byte-identical to a from-scratch build
/// over the same documents.
pub fn reslice(segments: &[&InvertedIndex], shards: usize) -> Vec<InvertedIndex> {
    let total_docs: usize = segments.iter().map(|s| s.num_docs()).sum();
    let mut bases = Vec::with_capacity(segments.len());
    let mut next = 0usize;
    for s in segments {
        bases.push(next);
        next += s.num_docs();
    }
    doc_ranges(total_docs, shards)
        .into_iter()
        .map(|range| reslice_one(segments, &bases, range))
        .collect()
}

fn reslice_one(segments: &[&InvertedIndex], bases: &[usize], range: Range<usize>) -> InvertedIndex {
    let mut interner = Interner::default();
    let mut accum: Vec<Vec<(u32, Vec<u32>)>> = Vec::new();
    let mut doc_lengths: Vec<u32> = vec![0; range.len()];
    let mut total_tokens = 0u64;
    for (si, seg) in segments.iter().enumerate() {
        let base = bases[si];
        let lo = range.start.max(base);
        let hi = range.end.min(base + seg.num_docs());
        if lo >= hi {
            continue;
        }
        for g in lo..hi {
            let len = seg.doc_len((g - base) as u32);
            doc_lengths[g - range.start] = len;
            total_tokens += len as u64;
        }
        for t in 0..seg.num_terms() {
            let tid = TermId(t as u32);
            let mut out_id: Option<TermId> = None;
            for p in seg.postings(tid).iter() {
                let g = base + p.doc as usize;
                if g < lo {
                    continue;
                }
                if g >= hi {
                    break; // postings are doc-ascending
                }
                let id =
                    *out_id.get_or_insert_with(|| interner.intern(seg.interner().resolve(tid)));
                if id.index() >= accum.len() {
                    accum.push(Vec::new());
                }
                accum[id.index()].push(((g - range.start) as u32, p.positions));
            }
        }
    }
    let bounds = accum
        .iter()
        .map(|entries| {
            let mut bound = TermBound::EMPTY;
            for (doc, positions) in entries {
                bound.max_tf = bound.max_tf.max(positions.len() as u32);
                bound.min_len = bound.min_len.min(doc_lengths[*doc as usize]);
            }
            bound.normalized()
        })
        .collect();
    let postings = accum
        .into_iter()
        .map(|entries| {
            let mut b = PostingsBuilder::new();
            for (doc, positions) in entries {
                b.push(doc, &positions);
            }
            b.build()
        })
        .collect();
    InvertedIndex::from_parts(interner, postings, bounds, doc_lengths, total_tokens)
}

/// Compact the store in place: load the current generation, reslice it
/// into `shards` segments, stage them, and atomically replace the live
/// set. Returns the new manifest's generation fingerprint. No-op
/// (returns `None`) when the store has never published.
pub fn compact(
    store: &mut SegStore,
    shards: usize,
    source: ArtifactSource,
) -> Result<Option<u64>, SegStoreError> {
    let Some(generation) = load_generation(store.dir(), store.manifest().fingerprint, source)?
    else {
        return Ok(None);
    };
    let indexes: Vec<&InvertedIndex> = generation.segments.iter().map(|l| &l.index).collect();
    let merged = reslice(&indexes, shards);
    let mut staged = Vec::with_capacity(merged.len());
    for index in &merged {
        staged.push(store.stage_segment(index)?);
    }
    store.replace_segments(&staged)?;
    Ok(Some(store.manifest().generation_fingerprint()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RetrievalBackend;
    use crate::index::IndexBuilder;
    use crate::query_lang::parse;
    use crate::sharded::ShardedEngine;

    const DOCS: [&str; 9] = [
        "a gondola on the grand canal of venice",
        "the grand hotel beside a small canal",
        "",
        "venice has many bridges and one grand canal",
        "completely unrelated text about mountains",
        "gondola gondola gondola",
        "the grand canal venice gondola rides",
        "canal boats and bridges of venice",
        "mountain huts far from any canal",
    ];

    const QUERIES: [&str; 6] = [
        "#1(grand canal)",
        "#combine(#1(grand canal) venice)",
        "#combine(gondola venice #1(small canal))",
        "#weight(0.9 venice 0.1 canal)",
        "the",
        "#combine(zzzz gondola)",
    ];

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("querygraph-segstore-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn index_of(docs: &[&str]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        b.build()
    }

    fn mono(docs: &[&str]) -> SearchEngine {
        SearchEngine::new(index_of(docs))
    }

    /// Commit `docs` in batches of `batch` docs each.
    fn ingest(store: &mut SegStore, docs: &[&str], batch: usize) {
        for chunk in docs.chunks(batch.max(1)) {
            store.commit_segment(&index_of(chunk)).expect("commit");
        }
    }

    fn engine_of(dir: &Path, fp: u64) -> ShardedEngine {
        let gen = load_generation(dir, fp, ArtifactSource::Read)
            .expect("load")
            .expect("published");
        ShardedEngine::from_shards(gen.into_engines(LmParams::default()), LmParams::default())
    }

    #[test]
    fn incremental_generation_matches_monolithic() {
        let dir = temp_dir("inc");
        let fp = 0x5EC5;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS, 2);
        assert_eq!(store.manifest().segments.len(), 5);
        assert_eq!(store.manifest().total_docs(), DOCS.len() as u64);
        let engine = engine_of(&dir, fp);
        let m = mono(&DOCS);
        for q in QUERIES {
            let q = parse(q).unwrap();
            assert_eq!(engine.search(&q, 10), m.search(&q, 10), "{q:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generations_grow_and_fingerprints_change() {
        let dir = temp_dir("gens");
        let mut store = SegStore::open(&dir, 1).expect("open");
        assert_eq!(store.manifest().generation, 0);
        store.commit_segment(&index_of(&DOCS[..3])).unwrap();
        let g1 = store.manifest().generation_fingerprint();
        assert_eq!(store.manifest().generation, 1);
        store.commit_segment(&index_of(&DOCS[3..])).unwrap();
        assert_eq!(store.manifest().generation, 2);
        let g2 = store.manifest().generation_fingerprint();
        assert_ne!(g1, g2, "generation fingerprint must change on publish");
        // Reopen sees the published state.
        let reopened = SegStore::open(&dir, 1).expect("reopen");
        assert_eq!(reopened.manifest(), store.manifest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_fingerprint_rejected() {
        let dir = temp_dir("wrongfp");
        let mut store = SegStore::open(&dir, 7).expect("open");
        store.commit_segment(&index_of(&DOCS[..2])).unwrap();
        match SegStore::open(&dir, 8) {
            Err(SegStoreError::Manifest(OndiskError::MetaMismatch { expected, found })) => {
                assert_eq!((expected, found), (8, 7));
            }
            other => panic!("expected MetaMismatch, got {other:?}"),
        }
        assert!(matches!(
            load_generation(&dir, 8, ArtifactSource::Read),
            Err(SegStoreError::Manifest(OndiskError::MetaMismatch { .. }))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_loads_as_none() {
        let dir = temp_dir("empty");
        let store = SegStore::open(&dir, 1).expect("open");
        assert_eq!(store.manifest().generation, 0);
        assert!(load_generation(&dir, 1, ArtifactSource::Read)
            .expect("load")
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    // ── crash consistency ───────────────────────────────────────────
    //
    // Simulate a kill at every step between segment write and manifest
    // swap: after each intermediate on-disk state, the *old* generation
    // must still load cleanly.

    #[test]
    fn crash_after_stage_before_publish_keeps_old_generation() {
        let dir = temp_dir("crash-stage");
        let fp = 0xC;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS[..4], 2);
        let old = store.manifest().clone();

        // "Crash": stage a new segment but never publish.
        store.stage_segment(&index_of(&DOCS[4..])).unwrap();
        drop(store);

        let gen = load_generation(&dir, fp, ArtifactSource::Read)
            .expect("old generation loads")
            .expect("published");
        assert_eq!(gen.manifest, old);
        assert_eq!(gen.manifest.total_docs(), 4);
        // Reopening and committing later re-uses a fresh seq (no clash
        // with the orphan — the orphan is simply overwritten or ignored).
        let mut store = SegStore::open(&dir, fp).expect("reopen");
        store.commit_segment(&index_of(&DOCS[4..])).unwrap();
        let engine = engine_of(&dir, fp);
        let m = mono(&DOCS);
        for q in QUERIES {
            let q = parse(q).unwrap();
            assert_eq!(engine.search(&q, 10), m.search(&q, 10), "{q:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_with_truncated_staged_segment_keeps_old_generation() {
        let dir = temp_dir("crash-trunc");
        let fp = 0xD;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS[..4], 4);
        let old = store.manifest().clone();
        let meta = store.stage_segment(&index_of(&DOCS[4..])).unwrap();
        // Corrupt the staged (unreferenced) file in every truncation.
        let staged_path = dir.join(segment_file(meta.seq));
        let bytes = std::fs::read(&staged_path).unwrap();
        for len in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&staged_path, &bytes[..len]).unwrap();
            let gen = load_generation(&dir, fp, ArtifactSource::Read)
                .expect("old generation loads")
                .expect("published");
            assert_eq!(gen.manifest, old, "truncation to {len}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_leaving_tmp_manifest_keeps_old_generation() {
        let dir = temp_dir("crash-tmp");
        let fp = 0xE;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS[..4], 4);
        let old = store.manifest().clone();
        // "Crash" mid-rename: a temp manifest file exists beside the
        // real one (any name the atomic writer might have used).
        std::fs::write(
            manifest_path(&dir).with_extension("qgss.tmp.12345"),
            b"junk",
        )
        .unwrap();
        let gen = load_generation(&dir, fp, ArtifactSource::Read)
            .expect("old generation loads")
            .expect("published");
        assert_eq!(gen.manifest, old);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_write_is_typed_never_panics() {
        let dir = temp_dir("torn");
        let fp = 0xF;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS, 3);
        let path = manifest_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        // Every prefix of the manifest (a torn non-atomic write) and
        // every single-byte flip must be a typed error or a valid load.
        for len in 0..bytes.len() {
            std::fs::write(&path, &bytes[..len]).unwrap();
            match load_generation(&dir, fp, ArtifactSource::Read) {
                Err(SegStoreError::Manifest(_)) => {}
                other => panic!("torn manifest at {len}: {other:?}"),
            }
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            std::fs::write(&path, &corrupt).unwrap();
            let _ = load_generation(&dir, fp, ArtifactSource::Read);
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_generation(&dir, fp, ArtifactSource::Read).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    // ── compaction ──────────────────────────────────────────────────

    #[test]
    fn reslice_preserves_search_exactly() {
        let m = mono(&DOCS);
        // Build segments of uneven sizes, then reslice to various
        // shard counts; every engine must match the monolithic one.
        let segs = [
            index_of(&DOCS[..1]),
            index_of(&DOCS[1..5]),
            index_of(&DOCS[5..]),
        ];
        let seg_refs: Vec<&InvertedIndex> = segs.iter().collect();
        for n in [1usize, 2, 3, 4, 7] {
            let shards = reslice(&seg_refs, n);
            assert_eq!(shards.len(), n);
            let engines: Vec<SearchEngine> = shards.into_iter().map(SearchEngine::new).collect();
            let engine = ShardedEngine::from_shards(engines, LmParams::default());
            assert_eq!(engine.num_docs(), DOCS.len());
            assert_eq!(engine.total_tokens(), m.index().total_tokens());
            for q in QUERIES {
                let q = parse(q).unwrap();
                assert_eq!(engine.search(&q, 10), m.search(&q, 10), "n={n} {q:?}");
            }
        }
    }

    #[test]
    fn reslice_to_one_matches_fresh_build_statistics() {
        let segs = [index_of(&DOCS[..4]), index_of(&DOCS[4..])];
        let seg_refs: Vec<&InvertedIndex> = segs.iter().collect();
        let merged = reslice(&seg_refs, 1).remove(0);
        let fresh = index_of(&DOCS);
        assert_eq!(merged.num_docs(), fresh.num_docs());
        assert_eq!(merged.num_terms(), fresh.num_terms());
        assert_eq!(merged.total_tokens(), fresh.total_tokens());
        assert_eq!(merged.min_doc_len(), fresh.min_doc_len());
        for doc in 0..fresh.num_docs() as u32 {
            assert_eq!(merged.doc_len(doc), fresh.doc_len(doc));
        }
        // Every term's postings (docs, tf, positions) and bounds match.
        for t in 0..fresh.num_terms() {
            let tid = TermId(t as u32);
            let term = fresh.interner().resolve(tid);
            let mid = merged.term_id(term).expect("term present after merge");
            let a: Vec<(u32, Vec<u32>)> = fresh
                .postings(tid)
                .iter()
                .map(|p| (p.doc, p.positions))
                .collect();
            let b: Vec<(u32, Vec<u32>)> = merged
                .postings(mid)
                .iter()
                .map(|p| (p.doc, p.positions))
                .collect();
            assert_eq!(a, b, "postings for {term:?}");
            assert_eq!(
                fresh.term_bound(tid),
                merged.term_bound(mid),
                "bounds for {term:?}"
            );
        }
    }

    #[test]
    fn compact_in_place_shrinks_segments_and_preserves_results() {
        let dir = temp_dir("compact");
        let fp = 0xAB;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS, 1); // 9 tiny segments
        assert_eq!(store.manifest().segments.len(), 9);
        let before = engine_of(&dir, fp);
        let gen_fp = compact(&mut store, 2, ArtifactSource::Read)
            .expect("compacts")
            .expect("published store");
        assert_eq!(store.manifest().segments.len(), 2);
        assert_eq!(store.manifest().generation_fingerprint(), gen_fp);
        // Replaced segment files are gone; live ones load.
        let after = engine_of(&dir, fp);
        let m = mono(&DOCS);
        for q in QUERIES {
            let q = parse(q).unwrap();
            let expected = m.search(&q, 10);
            assert_eq!(before.search(&q, 10), expected, "{q:?} before");
            assert_eq!(after.search(&q, 10), expected, "{q:?} after");
        }
        let live: Vec<String> = store
            .manifest()
            .segments
            .iter()
            .map(|s| segment_file(s.seq))
            .collect();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            if name.ends_with(".qgidx") {
                assert!(live.contains(&name), "orphan {name} should be removed");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest::proptest! {
        /// Random worlds, random batch splits, random compaction width:
        /// the segstore engine (raw generation and compacted) must match
        /// the monolithic engine exactly.
        #[test]
        fn segstore_equals_monolithic_on_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 0..16),
                1..14,
            ),
            batch in 1usize..6,
            shards in 1usize..5,
            qpick in 0u8..6,
        ) {
            const VOCAB: [&str; 6] =
                ["alpha", "beta", "gamma", "delta", "beta gamma", "alpha beta"];
            let texts: Vec<String> = docs
                .iter()
                .map(|d| {
                    d.iter()
                        .map(|&x| VOCAB[x as usize])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let m = mono(&refs);
            let queries = [
                "#combine(alpha beta)",
                "#1(beta gamma)",
                "#weight(0.7 alpha 0.3 #1(alpha beta))",
                "#combine(#1(gamma delta) delta)",
                "delta",
                "#combine(alpha #1(beta gamma) zeta)",
            ];
            let q = parse(queries[qpick as usize % queries.len()]).unwrap();
            let expected = m.search(&q, 10);

            // Raw generation: per-batch segments as shards.
            let seg_indexes: Vec<InvertedIndex> =
                refs.chunks(batch).map(index_of).collect();
            let gen_engines: Vec<SearchEngine> = refs
                .chunks(batch)
                .map(|c| SearchEngine::new(index_of(c)))
                .collect();
            let gen = ShardedEngine::from_shards(gen_engines, LmParams::default());
            proptest::prop_assert_eq!(&gen.search(&q, 10), &expected);

            // Compacted: reslice the same segments into `shards`.
            let seg_refs: Vec<&InvertedIndex> = seg_indexes.iter().collect();
            let compacted: Vec<SearchEngine> = reslice(&seg_refs, shards)
                .into_iter()
                .map(SearchEngine::new)
                .collect();
            let comp = ShardedEngine::from_shards(compacted, LmParams::default());
            proptest::prop_assert_eq!(&comp.search(&q, 10), &expected);
        }
    }

    #[test]
    fn loaded_generation_exposes_phrase_surface() {
        let dir = temp_dir("phrases");
        let fp = 0x11;
        let mut store = SegStore::open(&dir, fp).expect("open");
        ingest(&mut store, &DOCS, 3);
        let engine = engine_of(&dir, fp);
        let m = mono(&DOCS);
        let phrase = vec!["grand".to_string(), "canal".to_string()];
        let a = RetrievalBackend::resolve_phrase(&m, &phrase);
        let b = engine.resolve_phrase(&phrase);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.collection_prob.to_bits(), b.collection_prob.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }
}
