//! Deterministic work-stealing `parallel_map` — the workspace's one
//! parallel execution primitive.
//!
//! Extracted from `core::pipeline` (which re-exports it unchanged) so
//! the retrieval layer itself can scatter work — the sharded engine
//! fans per-shard retrieval and per-shard artifact loads over it —
//! without a dependency cycle. Every parallel consumer in the
//! workspace (`run_queries`, `expand_batch`, shard scatter-gather,
//! parallel segment loading) runs on this one runner, so the
//! determinism argument is made once: the steal schedule only decides
//! *who* computes an index, never *what* is computed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `0..n` through `f` across `threads` scoped workers with chunked
/// work stealing, reassembling results in index order.
///
/// Output is **deterministic** for pure `f`: slot `i` always receives
/// `f(i)`. `threads <= 1` runs inline on the calling thread (no spawn
/// overhead); workers are capped at `n`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let queue = StealQueue::new(n, workers);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(i) = queue.claim(w) {
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("parallel_map worker panicked") {
                debug_assert!(slots[i].is_none(), "index {i} claimed twice");
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index mapped exactly once"))
        .collect()
}

/// Chunked work-stealing index queue over `0..n`.
///
/// Worker `w` drains its own chunk with `fetch_add`, then sweeps the
/// other chunks in ring order. A cursor may overshoot its chunk end by
/// at most one claim per polling worker; overshoots are discarded, so
/// every index in `0..n` is handed out exactly once.
struct StealQueue {
    cursors: Vec<AtomicUsize>,
    ends: Vec<usize>,
}

impl StealQueue {
    fn new(n: usize, workers: usize) -> StealQueue {
        let base = n / workers;
        let extra = n % workers;
        let mut cursors = Vec::with_capacity(workers);
        let mut ends = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            cursors.push(AtomicUsize::new(next));
            next += len;
            ends.push(next);
        }
        StealQueue { cursors, ends }
    }

    /// Claim the next index for `worker`, stealing when its own chunk is
    /// drained. Returns `None` when the whole queue is exhausted.
    fn claim(&self, worker: usize) -> Option<usize> {
        let w = self.cursors.len();
        for k in 0..w {
            let chunk = (worker + k) % w;
            let idx = self.cursors[chunk].fetch_add(1, Ordering::Relaxed);
            if idx < self.ends[chunk] {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_queue_hands_out_every_index_once() {
        for (n, workers) in [(0, 3), (1, 4), (7, 3), (24, 4), (5, 8)] {
            let queue = StealQueue::new(n, workers.min(n.max(1)));
            let mut seen = vec![0usize; n];
            for w in 0..queue.cursors.len() {
                while let Some(idx) = queue.claim(w) {
                    seen[idx] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "n={n} w={workers}: {seen:?}");
        }
    }

    #[test]
    fn steal_queue_is_exhaustive_under_contention() {
        let n = 97;
        let workers = 8;
        let queue = StealQueue::new(n, workers);
        let claimed: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(idx) = queue.claim(w) {
                            mine.push(idx);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("claimer panicked"))
                .collect()
        });
        let mut sorted = claimed;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_sequential_at_any_thread_count() {
        let f = |i: usize| i * i + 1;
        let expected: Vec<usize> = (0..31).map(f).collect();
        for threads in [0, 1, 2, 8, 64] {
            assert_eq!(parallel_map(31, threads, f), expected, "threads={threads}");
        }
        assert!(parallel_map(0, 4, f).is_empty());
    }
}
