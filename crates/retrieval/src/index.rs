//! The positional inverted index.
//!
//! [`IndexBuilder`] tokenizes documents (through `querygraph-text`, the
//! same normalization the entity linker uses) and freezes an
//! [`InvertedIndex`]: one [`PostingsList`] per term, document lengths,
//! and collection statistics for smoothing.

use crate::postings::{PostingsBuilder, PostingsList};
use querygraph_text::{tokenize_positions, Interner, TermId};

/// Accumulates documents, then [`IndexBuilder::build`]s the index.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    interner: Interner,
    // term → (doc, positions) accumulated in insertion order; docs are
    // appended in ascending order by construction.
    accum: Vec<Vec<(u32, Vec<u32>)>>,
    doc_lengths: Vec<u32>,
    total_tokens: u64,
}

impl IndexBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a document; returns its dense doc id (assigned sequentially
    /// from 0). The text is normalized and tokenized internally.
    pub fn add_document(&mut self, text: &str) -> u32 {
        let doc = self.doc_lengths.len() as u32;
        let tokens = tokenize_positions(text);
        self.doc_lengths.push(tokens.len() as u32);
        self.total_tokens += tokens.len() as u64;
        for tok in &tokens {
            let t = self.interner.intern(&tok.text);
            if t.index() >= self.accum.len() {
                self.accum.push(Vec::new());
            }
            let entry = &mut self.accum[t.index()];
            match entry.last_mut() {
                Some((d, positions)) if *d == doc => positions.push(tok.position),
                _ => entry.push((doc, vec![tok.position])),
            }
        }
        doc
    }

    /// Number of documents added so far.
    pub fn doc_count(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Freeze into an immutable index.
    pub fn build(self) -> InvertedIndex {
        let bounds = self
            .accum
            .iter()
            .map(|entries| {
                let mut bound = TermBound::EMPTY;
                for (doc, positions) in entries {
                    bound.max_tf = bound.max_tf.max(positions.len() as u32);
                    bound.min_len = bound.min_len.min(self.doc_lengths[*doc as usize]);
                }
                bound.normalized()
            })
            .collect();
        let postings = self
            .accum
            .into_iter()
            .map(|entries| {
                let mut b = PostingsBuilder::new();
                for (doc, positions) in entries {
                    b.push(doc, &positions);
                }
                b.build()
            })
            .collect();
        let min_doc_len = self.doc_lengths.iter().copied().min().unwrap_or(0);
        InvertedIndex {
            interner: self.interner,
            postings,
            bounds,
            doc_lengths: self.doc_lengths,
            min_doc_len,
            total_tokens: self.total_tokens,
        }
    }
}

/// Per-term score-bound statistics for WAND-style pruning: the two
/// inputs that maximize a term's Dirichlet log-belief over its postings.
/// The belief `ln((tf + μ·p) / (|d| + μ))` is monotone increasing in
/// `tf` and decreasing in `|d|`, so evaluating it at (`max_tf`,
/// `min_len`) upper-bounds the term's contribution to *any* matching
/// document — independently of μ, which is why the artifact can store
/// these raw counts instead of a smoothing-specific score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermBound {
    /// Highest term frequency across the term's postings.
    pub max_tf: u32,
    /// Shortest document (token count) among those containing the term.
    pub min_len: u32,
}

impl TermBound {
    /// Identity for accumulation; [`TermBound::normalized`] collapses it
    /// to the all-zero convention for empty postings.
    pub(crate) const EMPTY: TermBound = TermBound {
        max_tf: 0,
        min_len: u32::MAX,
    };

    /// Canonical form: a term with no postings is `(0, 0)`.
    pub(crate) fn normalized(self) -> TermBound {
        if self.max_tf == 0 {
            TermBound {
                max_tf: 0,
                min_len: 0,
            }
        } else {
            self
        }
    }
}

/// An immutable positional inverted index.
#[derive(Debug)]
pub struct InvertedIndex {
    interner: Interner,
    postings: Vec<PostingsList>,
    bounds: Vec<TermBound>,
    doc_lengths: Vec<u32>,
    min_doc_len: u32,
    total_tokens: u64,
}

impl InvertedIndex {
    /// Reassemble an index from deserialized parts ([`crate::ondisk`]).
    /// The caller guarantees the parts are mutually consistent (one
    /// postings list and one [`TermBound`] per interned term, in term-id
    /// order, bounds matching the postings they summarize).
    pub(crate) fn from_parts(
        interner: Interner,
        postings: Vec<PostingsList>,
        bounds: Vec<TermBound>,
        doc_lengths: Vec<u32>,
        total_tokens: u64,
    ) -> InvertedIndex {
        debug_assert_eq!(interner.len(), postings.len());
        debug_assert_eq!(postings.len(), bounds.len());
        let min_doc_len = doc_lengths.iter().copied().min().unwrap_or(0);
        InvertedIndex {
            interner,
            postings,
            bounds,
            doc_lengths,
            min_doc_len,
            total_tokens,
        }
    }

    /// The term dictionary (id → string, insertion-ordered).
    pub(crate) fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Per-document token counts, indexed by doc id.
    pub(crate) fn doc_lengths(&self) -> &[u32] {
        &self.doc_lengths
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Total token count of the collection.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Length (token count) of document `doc`.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_lengths[doc as usize]
    }

    /// Mean document length; 0.0 for an empty index.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.doc_lengths.len() as f64
        }
    }

    /// Term id of an (already normalized) word.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.interner.get(term)
    }

    /// The postings list of a term id.
    pub fn postings(&self, t: TermId) -> &PostingsList {
        &self.postings[t.index()]
    }

    /// The score-bound statistics of a term id (see [`TermBound`]).
    pub fn term_bound(&self, t: TermId) -> TermBound {
        self.bounds[t.index()]
    }

    /// The shortest document in the collection (token count); 0 for an
    /// empty collection. Bounds the background (tf = 0) log-belief of
    /// any component, since the belief is decreasing in document
    /// length.
    pub fn min_doc_len(&self) -> u32 {
        self.min_doc_len
    }

    /// Postings by raw term string (normalized form expected).
    pub fn postings_for(&self, term: &str) -> Option<&PostingsList> {
        self.term_id(term).map(|t| self.postings(t))
    }

    /// Collection probability of a term: cf(t) / total tokens. Unknown
    /// terms get 0.
    pub fn collection_prob(&self, term: &str) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        match self.postings_for(term) {
            Some(p) => p.collection_freq() as f64 / self.total_tokens as f64,
            None => 0.0,
        }
    }

    /// The smallest nonzero probability representable in this
    /// collection; the smoothing floor for unseen terms and phrases.
    pub fn epsilon_prob(&self) -> f64 {
        epsilon_for(self.total_tokens)
    }
}

/// The smoothing floor for a collection of `total_tokens` tokens — the
/// one formula behind [`InvertedIndex::epsilon_prob`] and the sharded
/// engine's globally aggregated floor, so the two can never drift (the
/// byte-identity contract divides by *this* value on both layouts).
pub fn epsilon_for(total_tokens: u64) -> f64 {
    if total_tokens == 0 {
        1e-9
    } else {
        0.5 / total_tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("a gondola on the grand canal");
        b.add_document("the grand hotel");
        b.add_document("");
        b.build()
    }

    #[test]
    fn doc_ids_sequential() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add_document("x"), 0);
        assert_eq!(b.add_document("y"), 1);
        assert_eq!(b.doc_count(), 2);
    }

    #[test]
    fn collection_statistics() {
        let idx = tiny();
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.total_tokens(), 9);
        assert_eq!(idx.doc_len(0), 6);
        assert_eq!(idx.doc_len(2), 0);
        assert!((idx.avg_doc_len() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn postings_positions_are_correct() {
        let idx = tiny();
        let grand = idx.postings_for("grand").unwrap();
        let entries: Vec<(u32, Vec<u32>)> = grand.iter().map(|p| (p.doc, p.positions)).collect();
        assert_eq!(entries, vec![(0, vec![4]), (1, vec![1])]);
        let the = idx.postings_for("the").unwrap();
        assert_eq!(the.collection_freq(), 2);
        assert_eq!(the.doc_count(), 2);
    }

    #[test]
    fn repeated_terms_in_one_doc() {
        let mut b = IndexBuilder::new();
        b.add_document("canal canal canal");
        let idx = b.build();
        let p = idx.postings_for("canal").unwrap();
        let e: Vec<DocPositions> = p.iter().map(|x| (x.doc, x.positions)).collect();
        assert_eq!(e, vec![(0, vec![0, 1, 2])]);
    }

    type DocPositions = (u32, Vec<u32>);

    #[test]
    fn unknown_terms() {
        let idx = tiny();
        assert!(idx.postings_for("missing").is_none());
        assert_eq!(idx.collection_prob("missing"), 0.0);
    }

    #[test]
    fn collection_prob_sums_to_one_over_terms() {
        let idx = tiny();
        let total: f64 = (0..idx.num_terms())
            .map(|i| {
                idx.postings(TermId(i as u32)).collection_freq() as f64 / idx.total_tokens() as f64
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_is_applied() {
        let mut b = IndexBuilder::new();
        b.add_document("GONDOLA, Gondola; gondola!");
        let idx = b.build();
        assert_eq!(idx.postings_for("gondola").unwrap().collection_freq(), 3);
    }

    #[test]
    fn term_bounds_track_max_tf_and_min_len() {
        let mut b = IndexBuilder::new();
        b.add_document("canal canal canal gondola"); // len 4
        b.add_document("canal"); // len 1
        b.add_document(""); // len 0
        let idx = b.build();
        let canal = idx.term_id("canal").unwrap();
        assert_eq!(
            idx.term_bound(canal),
            TermBound {
                max_tf: 3,
                min_len: 1
            }
        );
        let gondola = idx.term_id("gondola").unwrap();
        assert_eq!(
            idx.term_bound(gondola),
            TermBound {
                max_tf: 1,
                min_len: 4
            }
        );
        assert_eq!(idx.min_doc_len(), 0, "the empty document is shortest");
    }

    #[test]
    fn min_doc_len_without_empty_docs() {
        let mut b = IndexBuilder::new();
        b.add_document("a b c");
        b.add_document("a b c d e");
        assert_eq!(b.build().min_doc_len(), 3);
        assert_eq!(IndexBuilder::new().build().min_doc_len(), 0);
    }

    #[test]
    fn epsilon_prob_positive() {
        let idx = tiny();
        assert!(idx.epsilon_prob() > 0.0);
        assert!(idx.epsilon_prob() < 1.0);
        let empty = IndexBuilder::new().build();
        assert!(empty.epsilon_prob() > 0.0);
    }
}
