//! Five-number summaries (min / quartiles / max) and simple descriptive
//! statistics.
//!
//! Tables 2 and 3 of the paper report `min, 25%, 50%, 75%, max` rows.
//! Quartiles use linear interpolation between order statistics (the
//! "type 7" estimator of Hyndman & Fan, the default of R and NumPy);
//! the choice is documented here because different estimators shift
//! quartiles of small samples noticeably.

/// A five-number summary plus the mean.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile (25 %).
    pub q1: f64,
    /// Median (50 %).
    pub median: f64,
    /// Third quartile (75 %).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl FiveNumber {
    /// Render as the paper's row shape: `min q1 median q3 max`.
    pub fn row(&self) -> [f64; 5] {
        [self.min, self.q1, self.median, self.q3, self.max]
    }
}

/// Type-7 quantile of sorted data. `p` in `[0, 1]`.
///
/// # Panics
/// If `sorted` is empty or `p` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Compute a [`FiveNumber`] summary. Returns `None` for empty input or
/// if any value is NaN.
pub fn five_number(values: &[f64]) -> Option<FiveNumber> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    Some(FiveNumber {
        min: sorted[0],
        q1: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.50),
        q3: quantile_sorted(&sorted, 0.75),
        max: *sorted.last().expect("non-empty"),
        mean,
    })
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample Pearson correlation; `None` when undefined (fewer than two
/// points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation (average ranks for ties); `None` when
/// undefined.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Ordinary-least-squares fit `y = slope·x + intercept` — the trend
/// lines of Figs. 7a and 9. `None` when undefined.
pub fn ols(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den == 0.0 {
        return None;
    }
    let slope = num / den;
    Some((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_known_values() {
        // 0..=4: quartiles at 1, 2, 3 under type-7.
        let s = five_number(&[4.0, 0.0, 2.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.q1, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.q3, 3.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.25), 2.5);
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn singleton_summary() {
        let s = five_number(&[7.0]).unwrap();
        assert_eq!(s.row(), [7.0; 5]);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(five_number(&[]).is_none());
        assert!(five_number(&[1.0, f64::NAN]).is_none());
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear → Spearman 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 1.0).collect();
        let (slope, intercept) = ols(&xs, &ys).unwrap();
        assert!((slope - 2.5).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let data: Vec<f64> = (0..37).map(|i| ((i * 29) % 17) as f64).collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile_sorted(&sorted, i as f64 / 20.0);
            assert!(q >= last);
            last = q;
        }
    }
}
