//! Exact-phrase matching — the `#1(...)` operator.
//!
//! A phrase matches at position `p` of a document when term `i` of the
//! phrase occurs at position `p + i` for every `i`. The paper's
//! ground-truth queries are built exclusively from exact title phrases
//! (§2.2: "based on exact phrase matching"), so this is the hot path of
//! the whole reproduction.
//!
//! The matcher walks the phrase terms' postings lists in lockstep
//! (they are doc-ordered) and intersects positions with offsets.

use crate::index::InvertedIndex;
use crate::postings::DocPosting;
use querygraph_text::TermId;

/// Phrase occurrences in one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhraseHit {
    /// Document id.
    pub doc: u32,
    /// Number of exact occurrences (the phrase "term frequency").
    pub tf: u32,
}

/// Match an exact phrase given its term ids. Returns hits in doc-id
/// order plus the phrase collection frequency (sum of tfs).
///
/// An empty phrase or a phrase with any unknown term matches nothing.
pub fn match_phrase(index: &InvertedIndex, terms: &[TermId]) -> Vec<PhraseHit> {
    if terms.is_empty() {
        return Vec::new();
    }
    if terms.len() == 1 {
        return index
            .postings(terms[0])
            .iter()
            .map(|p| PhraseHit {
                doc: p.doc,
                tf: p.tf(),
            })
            .collect();
    }

    // Iterators over every term's postings, advanced in lockstep.
    let mut iters: Vec<_> = terms.iter().map(|&t| index.postings(t).iter()).collect();
    let mut current: Vec<Option<DocPosting>> = iters.iter_mut().map(|it| it.next()).collect();
    let mut hits = Vec::new();

    'outer: loop {
        // Find the maximum current doc; every iterator must reach it.
        let mut target = 0u32;
        for c in &current {
            match c {
                None => break 'outer,
                Some(p) => target = target.max(p.doc),
            }
        }
        // Advance lagging iterators.
        let mut aligned = true;
        for (i, c) in current.iter_mut().enumerate() {
            while let Some(p) = c {
                if p.doc >= target {
                    break;
                }
                *c = iters[i].next();
            }
            match c {
                None => break 'outer,
                Some(p) if p.doc == target => {}
                Some(_) => aligned = false, // overshot: new round with larger target
            }
        }
        if !aligned {
            continue;
        }
        // All aligned on `target`: count consecutive-position matches.
        let tf = count_phrase_occurrences(&current);
        if tf > 0 {
            hits.push(PhraseHit { doc: target, tf });
        }
        // Advance every iterator past `target`.
        for (i, c) in current.iter_mut().enumerate() {
            *c = iters[i].next();
        }
    }
    hits
}

/// Count positions `p` such that term `i`'s positions contain `p + i`.
fn count_phrase_occurrences(current: &[Option<DocPosting>]) -> u32 {
    let first = current[0].as_ref().expect("aligned");
    let mut tf = 0u32;
    'pos: for &p in &first.positions {
        for (i, c) in current.iter().enumerate().skip(1) {
            let positions = &c.as_ref().expect("aligned").positions;
            let want = p + i as u32;
            if positions.binary_search(&want).is_err() {
                continue 'pos;
            }
        }
        tf += 1;
    }
    tf
}

/// Resolve a phrase's words to term ids; `None` if any word is unknown
/// to the index (the phrase then cannot match and its collection
/// frequency is zero).
pub fn resolve_terms(index: &InvertedIndex, words: &[String]) -> Option<Vec<TermId>> {
    words.iter().map(|w| index.term_id(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn idx() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("the grand canal of venice is a grand canal"); // 0
        b.add_document("grand hotel on the canal"); // 1
        b.add_document("canal grand"); // 2 (reversed: no match)
        b.add_document("grand canal grand canal grand canal"); // 3
        b.build()
    }

    fn phrase(index: &InvertedIndex, words: &[&str]) -> Vec<PhraseHit> {
        let words: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        match resolve_terms(index, &words) {
            Some(terms) => match_phrase(index, &terms),
            None => Vec::new(),
        }
    }

    #[test]
    fn exact_adjacency_required() {
        let index = idx();
        let hits = phrase(&index, &["grand", "canal"]);
        assert_eq!(
            hits,
            vec![PhraseHit { doc: 0, tf: 2 }, PhraseHit { doc: 3, tf: 3 },]
        );
    }

    #[test]
    fn order_matters() {
        let index = idx();
        let hits = phrase(&index, &["canal", "grand"]);
        // doc 2 "canal grand" and doc 3 "…canal grand canal…" twice.
        assert_eq!(
            hits,
            vec![PhraseHit { doc: 2, tf: 1 }, PhraseHit { doc: 3, tf: 2 },]
        );
    }

    #[test]
    fn single_term_phrase_is_term_lookup() {
        let index = idx();
        let hits = phrase(&index, &["hotel"]);
        assert_eq!(hits, vec![PhraseHit { doc: 1, tf: 1 }]);
    }

    #[test]
    fn three_word_phrase() {
        let index = idx();
        let hits = phrase(&index, &["grand", "canal", "of"]);
        assert_eq!(hits, vec![PhraseHit { doc: 0, tf: 1 }]);
    }

    #[test]
    fn unknown_word_matches_nothing() {
        let index = idx();
        assert!(phrase(&index, &["grand", "missing"]).is_empty());
    }

    #[test]
    fn empty_phrase_matches_nothing() {
        let index = idx();
        assert!(match_phrase(&index, &[]).is_empty());
    }

    #[test]
    fn phrase_never_exceeds_min_term_tf() {
        let index = idx();
        let hits = phrase(&index, &["grand", "canal"]);
        for h in hits {
            let g = index.postings_for("grand").unwrap();
            let tf_grand = g
                .iter()
                .find(|p| p.doc == h.doc)
                .map(|p| p.tf())
                .unwrap_or(0);
            assert!(h.tf <= tf_grand);
        }
    }

    proptest::proptest! {
        /// The lockstep matcher must agree with a naive scan over the
        /// original token streams.
        #[test]
        fn matches_naive_scan(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..30),
                1..8,
            ),
            phrase_words in proptest::collection::vec(0u8..4, 1..4),
        ) {
            let word = |b: u8| ["alpha", "beta", "gamma", "delta"][b as usize];
            let mut builder = IndexBuilder::new();
            for d in &docs {
                let text: Vec<&str> = d.iter().map(|&b| word(b)).collect();
                builder.add_document(&text.join(" "));
            }
            let index = builder.build();
            let words: Vec<String> =
                phrase_words.iter().map(|&b| word(b).to_string()).collect();
            let fast = match resolve_terms(&index, &words) {
                Some(terms) => match_phrase(&index, &terms),
                None => Vec::new(),
            };
            // Naive scan.
            let mut naive = Vec::new();
            for (di, d) in docs.iter().enumerate() {
                let tokens: Vec<&str> = d.iter().map(|&b| word(b)).collect();
                let mut tf = 0u32;
                if tokens.len() >= words.len() {
                    for start in 0..=(tokens.len() - words.len()) {
                        if (0..words.len()).all(|i| tokens[start + i] == words[i]) {
                            tf += 1;
                        }
                    }
                }
                if tf > 0 {
                    naive.push(PhraseHit { doc: di as u32, tf });
                }
            }
            proptest::prop_assert_eq!(fast, naive);
        }
    }
}
