//! Read-only memory mapping for index artifacts.
//!
//! The on-disk format (`ondisk`) is offset/length-shaped so a loaded
//! index can be a set of views into one buffer; this module supplies
//! that buffer as a `PROT_READ`/`MAP_PRIVATE` file mapping instead of a
//! heap read, so artifact pages fault in on demand and stay evictable
//! under memory pressure — the "real mmap" the ROADMAP asked for.
//!
//! The build environment has no `libc` crate, so the two syscalls are
//! declared directly against the platform C library `std` already
//! links. Unix-only; [`map_file`] reports an error elsewhere and the
//! caller ([`crate::ondisk::artifact_bytes`]) falls back to the plain
//! read path — mapping is a paging optimization, never a correctness
//! dependency. Note the loader's checksum + structural validation walk
//! the whole artifact at load time, so a mapping's pages are touched
//! once either way; what mmap saves is the up-front heap copy and the
//! resident footprint of cold postings.

use bytes::Bytes;
use std::path::Path;

#[cfg(unix)]
mod imp {
    use bytes::Bytes;
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An owned read-only mapping; unmapped on drop.
    struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // The region is immutable shared memory: no interior mutability,
    // no thread affinity.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl AsRef<[u8]> for MmapRegion {
        fn as_ref(&self) -> &[u8] {
            // Safety: `ptr` is a live PROT_READ mapping of exactly
            // `len` bytes, valid until drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // Safety: `ptr`/`len` are the exact values mmap returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    pub(super) fn map_file(path: &Path) -> std::io::Result<Bytes> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| std::io::Error::other("file too large to map"))?;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty mapping is just empty.
            return Ok(Bytes::default());
        }
        // Safety: length is nonzero and the fd is open for reading; a
        // MAP_FAILED return is checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Bytes::from_owner(MmapRegion { ptr, len }))
    }
}

/// Map `path` read-only into a [`Bytes`] buffer (the mapping is
/// unmapped when the last view drops). Errors on non-unix platforms
/// and on any syscall failure; callers fall back to reading.
pub fn map_file(path: &Path) -> std::io::Result<Bytes> {
    #[cfg(unix)]
    {
        imp::map_file(path)
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Err(std::io::Error::other("mmap unsupported on this platform"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, content: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("querygraph-mmap-{name}-{}", std::process::id()));
        std::fs::write(&path, content).expect("write temp file");
        path
    }

    #[cfg(unix)]
    #[test]
    fn mapped_bytes_equal_read_bytes() {
        let content: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        let path = temp_file("eq", &content);
        let mapped = map_file(&path).expect("maps");
        assert_eq!(&mapped[..], &content[..]);
        // Slices are views into the same mapping.
        let tail = mapped.slice(content.len() - 16..);
        assert_eq!(&tail[..], &content[content.len() - 16..]);
        drop(mapped);
        assert_eq!(
            &tail[..],
            &content[content.len() - 16..],
            "views keep the mapping alive"
        );
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = temp_file("empty", &[]);
        assert!(map_file(&path).expect("empty ok").is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(map_file(Path::new("/nonexistent/nope.qgidx")).is_err());
    }
}
