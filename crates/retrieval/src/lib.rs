//! # querygraph-retrieval
//!
//! The search-engine substrate of the reproduction. The paper evaluates
//! candidate expansion features by writing exact-phrase queries "in the
//! INDRI query language" and measuring top-r precision against each
//! query's relevant set (§2.2). INDRI itself is a language-model engine;
//! this crate implements the same contract:
//!
//! * [`index`] — a positional inverted index with delta-varint-encoded
//!   postings ([`postings`]), document lengths and collection statistics.
//! * [`phrase`] — exact-phrase matching (`#1(...)`: terms at consecutive
//!   positions), the operator the paper's queries are built from.
//! * [`lm`] — Dirichlet-smoothed query-likelihood scoring, INDRI's
//!   default retrieval model.
//! * [`query_lang`] — a parser and AST for the query-language subset
//!   used here: bare terms, `#1(…)`, `#combine(…)`, `#weight(…)`.
//! * [`engine`] — [`engine::SearchEngine`]: executes a parsed query and
//!   returns deterministic top-k results (ties broken by doc id), with a
//!   sharded phrase-postings cache (the ground-truth hill climb
//!   re-evaluates the same titles thousands of times, from many threads).
//! * [`backend`] — [`backend::RetrievalBackend`]: the scoring/retrieval
//!   surface everything above this crate consumes, implemented by the
//!   monolithic engine and by [`sharded::ShardedEngine`] with a strict
//!   byte-identity contract between layouts.
//! * [`sharded`] — [`sharded::ShardedEngine`]: N doc-partitioned shards
//!   behind deterministic scatter-gather, plus the segmented artifact
//!   (manifest + independently checksummed per-shard `QGIX` segments).
//! * [`remote`] — shards as separate *processes*: the QGRP binary RPC
//!   protocol, [`remote::ShardServer`] (one segment on a local socket),
//!   and [`remote::RemoteEngine`] (scatter-gather over shard processes,
//!   byte-identical to the in-process engine).
//! * [`par`] — the deterministic work-stealing [`par::parallel_map`]
//!   runner (shared with `core::pipeline`, which re-exports it).
//! * [`mmap`] — opt-in read-only file mapping behind
//!   [`ondisk::ArtifactSource::Mmap`], with read fallback.
//! * [`workspace`] — [`workspace::ScoreWorkspace`]: the hill climb's
//!   fast path. Resolves each title phrase once, precomputes per-leaf
//!   per-document log-beliefs, and scores candidate title sets without
//!   re-flattening or re-matching — bit-identical to the engine.
//! * [`ondisk`] — a versioned on-disk artifact for the whole retrieval
//!   state (term dictionary, postings buffers, per-doc stats, phrase
//!   dictionary) with checksummed sections and a zero-copy loader, so
//!   paper-scale worlds are indexed once and reloaded across runs.
//! * [`metrics`] — top-r precision `P(A, r, D)` and the averaged
//!   quality `O(A, D)` of the paper's Eq. 1 (R = {1, 5, 10, 15}).
//! * [`stats`] — five-number summaries (min/quartiles/max) used by
//!   Tables 2 and 3.
//!
//! ```
//! use querygraph_retrieval::index::IndexBuilder;
//! use querygraph_retrieval::engine::SearchEngine;
//! use querygraph_retrieval::query_lang::parse;
//!
//! let mut b = IndexBuilder::new();
//! b.add_document("a gondola on the grand canal");
//! b.add_document("the grand hotel by the canal");
//! let engine = SearchEngine::new(b.build());
//! let q = parse("#combine(#1(grand canal) gondola)").unwrap();
//! let hits = engine.search(&q, 10);
//! assert_eq!(hits[0].doc, 0); // exact phrase + term beats scattered terms
//! ```

pub mod backend;
pub mod engine;
pub mod index;
pub mod lm;
pub mod metrics;
pub mod mmap;
pub mod ondisk;
pub mod par;
pub mod phrase;
pub mod postings;
pub mod query_lang;
pub mod remote;
pub mod segstore;
pub mod sharded;
pub mod stats;
pub mod topk;
pub mod workspace;

pub use backend::{AnyEngine, RetrievalBackend};
pub use engine::{PhraseCacheEntry, SearchEngine, SearchHit, SearchMode};
pub use index::{IndexBuilder, InvertedIndex};
pub use metrics::{average_quality, precision_at, EVAL_CUTOFFS};
pub use ondisk::{ArtifactSource, LoadedIndex, OndiskError};
pub use par::parallel_map;
pub use query_lang::{parse, QueryNode};
pub use remote::{RemoteEngine, RemoteShard, ShardServer};
pub use segstore::{SegStore, SegStoreError};
pub use sharded::{ShardedEngine, ShardedError};
pub use workspace::{LeafId, ScoreWorkspace};
