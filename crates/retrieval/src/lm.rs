//! Dirichlet-smoothed query-likelihood scoring — INDRI's retrieval
//! model.
//!
//! The belief of a query component `w` in document `d` is
//!
//! ```text
//! b(w, d) = log( (tf(w, d) + μ · P(w | collection)) / (|d| + μ) )
//! ```
//!
//! and `#combine` averages the log-beliefs of its children. `μ` defaults
//! to INDRI's 2500. For *phrases*, `P(phrase | collection)` is the exact
//! phrase collection frequency over total tokens (computed by running
//! the matcher over the whole collection once and cached by the engine);
//! unseen components fall back to the index's epsilon probability so the
//! logarithm stays finite.

use crate::index::InvertedIndex;

/// Default Dirichlet prior (INDRI's default).
pub const DEFAULT_MU: f64 = 2500.0;

/// Scoring parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmParams {
    /// Dirichlet prior μ.
    pub mu: f64,
}

impl Default for LmParams {
    fn default() -> Self {
        LmParams { mu: DEFAULT_MU }
    }
}

/// Log-belief of a component with term frequency `tf` in a document of
/// length `doc_len`, given the component's collection probability.
///
/// `collection_prob` is clamped below by the index epsilon so that a
/// phrase that never occurs anywhere still yields a finite score.
#[inline]
pub fn log_belief(
    params: LmParams,
    index: &InvertedIndex,
    tf: u32,
    doc_len: u32,
    collection_prob: f64,
) -> f64 {
    log_belief_with_floor(params, index.epsilon_prob(), tf, doc_len, collection_prob)
}

/// [`log_belief`] with the smoothing floor passed explicitly instead of
/// derived from an index — the form backends whose collection
/// statistics are aggregated across shards use
/// ([`crate::backend::RetrievalBackend::epsilon_prob`]). Performs the
/// exact same floating-point operations in the same order as
/// [`log_belief`], so a sharded engine fed the global floor scores
/// bit-identically to the monolithic engine.
#[inline]
pub fn log_belief_with_floor(
    params: LmParams,
    epsilon: f64,
    tf: u32,
    doc_len: u32,
    collection_prob: f64,
) -> f64 {
    let p = collection_prob.max(epsilon);
    let numerator = tf as f64 + params.mu * p;
    let denominator = doc_len as f64 + params.mu;
    (numerator / denominator).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn idx() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("a b c d e f g h");
        b.add_document("a a a a");
        b.build()
    }

    #[test]
    fn higher_tf_scores_higher() {
        let index = idx();
        let p = index.collection_prob("a");
        let params = LmParams::default();
        let s1 = log_belief(params, &index, 1, 10, p);
        let s4 = log_belief(params, &index, 4, 10, p);
        assert!(s4 > s1);
    }

    #[test]
    fn longer_docs_dilute() {
        let index = idx();
        let p = index.collection_prob("a");
        let params = LmParams::default();
        let short = log_belief(params, &index, 1, 5, p);
        let long = log_belief(params, &index, 1, 500, p);
        assert!(short > long);
    }

    #[test]
    fn zero_tf_uses_background() {
        let index = idx();
        let p = index.collection_prob("a");
        let params = LmParams::default();
        let s = log_belief(params, &index, 0, 10, p);
        assert!(s.is_finite());
        assert!(s < 0.0);
    }

    #[test]
    fn unseen_component_is_finite() {
        let index = idx();
        let params = LmParams::default();
        let s = log_belief(params, &index, 0, 10, 0.0);
        assert!(s.is_finite());
    }

    #[test]
    fn mu_zero_degenerates_to_mle() {
        let index = idx();
        let params = LmParams { mu: 0.0 };
        let s = log_belief(params, &index, 2, 4, 0.25);
        assert!((s - (2.0f64 / 4.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn score_monotone_in_collection_prob() {
        let index = idx();
        let params = LmParams::default();
        // Both probabilities above the epsilon floor (0.5/12 ≈ 0.042).
        let lo = log_belief(params, &index, 0, 10, 0.05);
        let hi = log_belief(params, &index, 0, 10, 0.5);
        assert!(hi > lo);
    }

    #[test]
    fn tiny_probs_clamp_to_epsilon() {
        let index = idx();
        let params = LmParams::default();
        let a = log_belief(params, &index, 0, 10, 1e-12);
        let b = log_belief(params, &index, 0, 10, 0.0);
        assert_eq!(a, b, "below-epsilon probabilities are equivalent");
    }
}
