//! The coordinator side of QGRP: a per-shard RPC client plus a
//! [`RemoteEngine`] that scatter-gathers N shard *processes*
//! byte-identically to the in-process [`crate::sharded::ShardedEngine`].
//!
//! ## The two-phase search
//!
//! A shard cannot score alone: Dirichlet smoothing reads the **global**
//! collection probability (global cf / global tokens) and the global
//! epsilon floor. So a search is two rounds:
//!
//! 1. [`RemoteShard::leaf_cfs`] — every shard flattens the query (the
//!    shared `flatten_specs` pass) and returns its local per-leaf
//!    collection frequencies. The coordinator sums them in shard order
//!    — integer sums, so the global counts are *exact* — and computes
//!    the same `cf / total_tokens` probabilities and `epsilon_for`
//!    floor the in-process engine computes.
//! 2. [`RemoteShard::score_topk`] — every shard scores its local
//!    candidates through the one shared `shard_topk` with the global
//!    inputs shipped as f64 *bits* (μ, ε, per-leaf probabilities) and
//!    its global doc-id base, returning its sorted local top-k keyed by
//!    global doc id.
//!
//! The gather then merges under the same total order (score descending,
//! doc ascending) and truncates to k — exactly the in-process merge.
//! Identical flattening + identical integer statistics + identical
//! float-op sequence + identical merge = bit-identical results, which
//! the equivalence tests at N ∈ {1, 2, 3, 7} pin.
//!
//! ## Failure posture
//!
//! Every transport or protocol failure is a typed
//! [`ShardedError::Shard`] naming the failing shard (the serving facade
//! maps it to `ServiceError::ArtifactShard`). The stream reconnects
//! once per call before giving up, and initial connection retries with
//! linear backoff — a shard that is still `exec`ing when the
//! coordinator first dials is tolerated, a dead one is reported.

use crate::engine::{flatten_specs, phrase_cache_slot, PhraseInfo, SearchHit, SearchMode};
use crate::index::epsilon_for;
use crate::lm::LmParams;
use crate::ondisk::OndiskError;
use crate::par::parallel_map;
use crate::phrase::PhraseHit;
use crate::query_lang::QueryNode;
use crate::remote::proto::{
    decode_error, put_str, put_u32, put_u64, read_frame, write_frame, Op, PayloadReader,
    ProtoError, STATUS_OK,
};
use crate::sharded::{segment_fingerprint, ShardedError};
use crate::topk::Scored;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of global phrase-cache locks (mirrors the sharded engine).
const PHRASE_CACHE_LOCKS: usize = 16;

/// What a shard reports about itself in the [`Op::Hello`] handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloInfo {
    /// The segment fingerprint embedded in the shard's artifact.
    pub fingerprint: u64,
    /// The shard index the process was started as.
    pub shard: u32,
    /// Documents in the shard's segment.
    pub num_docs: u32,
    /// Tokens in the shard's segment.
    pub total_tokens: u64,
}

/// A QGRP client for one shard process: one stream behind a lock,
/// monotonically increasing request ids, reconnect-once on transport
/// failure.
pub struct RemoteShard {
    addr: String,
    stream: Mutex<Option<TcpStream>>,
    next_id: AtomicU64,
}

impl RemoteShard {
    /// Connect to a shard process, retrying `attempts` times with
    /// `backoff` between tries (a freshly spawned child may not be
    /// listening yet).
    pub fn connect(
        addr: &str,
        attempts: u32,
        backoff: Duration,
    ) -> Result<RemoteShard, ProtoError> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(RemoteShard {
                        addr: addr.to_string(),
                        stream: Mutex::new(Some(stream)),
                        next_id: AtomicU64::new(1),
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ProtoError::Io(format!(
            "connect {addr}: {}",
            last.map(|e| e.to_string()).unwrap_or_default()
        )))
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One request/response round trip. Holds the stream lock for the
    /// whole exchange (requests on one stream are strictly sequential);
    /// on a transport failure the stream is dropped and redialed once
    /// before the error is surfaced.
    fn call(&self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ProtoError> {
        let mut guard = self.stream.lock();
        for attempt in 0..2 {
            if guard.is_none() {
                match TcpStream::connect(&self.addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        *guard = Some(stream);
                    }
                    Err(e) => return Err(ProtoError::Io(format!("connect {}: {e}", self.addr))),
                }
            }
            let stream = guard.as_mut().expect("stream populated above");
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let result = write_frame(stream, id, op as u8, STATUS_OK, payload)
                .map_err(|e| ProtoError::Io(e.to_string()))
                .and_then(|()| read_frame(stream));
            match result {
                Ok(frame) => {
                    if frame.request_id != id {
                        *guard = None; // desynchronized: don't reuse
                        return Err(ProtoError::IdMismatch {
                            sent: id,
                            received: frame.request_id,
                        });
                    }
                    if frame.status != STATUS_OK {
                        return Err(decode_error(&frame.payload));
                    }
                    return Ok(frame.payload);
                }
                Err(ProtoError::Io(m)) if attempt == 0 => {
                    // Stale stream (shard restarted, half-closed
                    // socket): redial once, then re-send.
                    *guard = None;
                    let _ = m;
                }
                Err(e) => {
                    *guard = None;
                    return Err(e);
                }
            }
        }
        unreachable!("second attempt always returns");
    }

    /// Identity handshake.
    pub fn hello(&self) -> Result<HelloInfo, ProtoError> {
        let payload = self.call(Op::Hello, &[])?;
        let mut r = PayloadReader::new(&payload);
        let info = HelloInfo {
            fingerprint: r.u64()?,
            shard: r.u32()?,
            num_docs: r.u32()?,
            total_tokens: r.u64()?,
        };
        r.finish()?;
        Ok(info)
    }

    /// Phase 1: this shard's per-leaf collection frequencies for
    /// `query` (wire form: the AST's `Display`, which re-parses
    /// exactly).
    pub fn leaf_cfs(&self, query: &str) -> Result<Vec<u64>, ProtoError> {
        let mut payload = Vec::new();
        put_str(&mut payload, query);
        let response = self.call(Op::LeafCfs, &payload)?;
        let mut r = PayloadReader::new(&response);
        let count = r.u32()? as usize;
        let mut cfs = Vec::with_capacity(count);
        for _ in 0..count {
            cfs.push(r.u64()?);
        }
        r.finish()?;
        Ok(cfs)
    }

    /// Phase 2: the shard's sorted local top-k (global doc ids, score
    /// bits), scored with the supplied global inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn score_topk(
        &self,
        query: &str,
        k: usize,
        mode: SearchMode,
        base: u32,
        mu: f64,
        epsilon: f64,
        probs: &[f64],
    ) -> Result<Vec<Scored>, ProtoError> {
        let mut payload = Vec::new();
        put_str(&mut payload, query);
        put_u32(&mut payload, k as u32);
        payload.push(match mode {
            SearchMode::Exact => 0,
            SearchMode::Pruned => 1,
        });
        put_u32(&mut payload, base);
        put_u64(&mut payload, mu.to_bits());
        put_u64(&mut payload, epsilon.to_bits());
        put_u32(&mut payload, probs.len() as u32);
        for p in probs {
            put_u64(&mut payload, p.to_bits());
        }
        let response = self.call(Op::ScoreTopK, &payload)?;
        let mut r = PayloadReader::new(&response);
        let count = r.u32()? as usize;
        let mut hits = Vec::with_capacity(count);
        for _ in 0..count {
            let doc = r.u32()?;
            let score = f64::from_bits(r.u64()?);
            hits.push(Scored { doc, score });
        }
        r.finish()?;
        Ok(hits)
    }

    /// Resolve one phrase to the shard's local `(doc, tf)` hits.
    pub fn resolve_phrase(&self, words: &[String]) -> Result<Vec<(u32, u32)>, ProtoError> {
        let mut payload = Vec::new();
        put_u32(&mut payload, words.len() as u32);
        for w in words {
            put_str(&mut payload, w);
        }
        let response = self.call(Op::ResolvePhrase, &payload)?;
        let mut r = PayloadReader::new(&response);
        let count = r.u32()? as usize;
        let mut hits = Vec::with_capacity(count);
        for _ in 0..count {
            hits.push((r.u32()?, r.u32()?));
        }
        r.finish()?;
        Ok(hits)
    }

    /// Length of one local document.
    pub fn doc_len(&self, doc: u32) -> Result<u32, ProtoError> {
        let mut payload = Vec::new();
        put_u32(&mut payload, doc);
        let response = self.call(Op::DocLen, &payload)?;
        let mut r = PayloadReader::new(&response);
        let len = r.u32()?;
        r.finish()?;
        Ok(len)
    }

    /// The shard's phrase-cache entry count.
    pub fn stats(&self) -> Result<u64, ProtoError> {
        let response = self.call(Op::Stats, &[])?;
        let mut r = PayloadReader::new(&response);
        let len = r.u64()?;
        r.finish()?;
        Ok(len)
    }

    /// Ask the shard process to drain and exit.
    pub fn shutdown(&self) -> Result<(), ProtoError> {
        self.call(Op::Shutdown, &[]).map(|_| ())
    }
}

/// N shard *processes* behind the
/// [`RetrievalBackend`](crate::backend::RetrievalBackend) surface —
/// the process-level twin of [`crate::sharded::ShardedEngine`], byte-
/// identical to it (and hence to the monolithic engine) by the shared
/// scoring path and the two-phase global-statistics protocol (module
/// docs).
pub struct RemoteEngine {
    shards: Vec<RemoteShard>,
    /// Global doc id of each shard's first document (prefix sums of the
    /// Hello doc counts, in shard order).
    doc_bases: Vec<u32>,
    num_docs: usize,
    total_tokens: u64,
    params: LmParams,
    search_threads: usize,
    /// Globally assembled phrase resolutions (hits re-based to global
    /// doc ids). Only successful resolutions are cached — a transport
    /// failure returns an empty, *uncached* resolution so a recovered
    /// shard is consulted again.
    phrase_cache: Vec<Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>>>,
}

impl RemoteEngine {
    /// Connect to shard processes at `addrs` (index = shard id) and
    /// verify each one's Hello: the shard index must match its slot and
    /// the fingerprint must equal
    /// [`segment_fingerprint`]`(manifest_fingerprint, i)` — the same
    /// pinning the artifact loader enforces, applied across the socket.
    /// Global statistics are aggregated once from the handshakes
    /// (integer sums in shard order — bit-identical to the manifest's).
    pub fn connect(
        addrs: &[String],
        params: LmParams,
        manifest_fingerprint: u64,
    ) -> Result<RemoteEngine, ShardedError> {
        let expected: Vec<u64> = (0..addrs.len())
            .map(|i| segment_fingerprint(manifest_fingerprint, i))
            .collect();
        Self::connect_with_fingerprints(addrs, params, &expected)
    }

    /// [`RemoteEngine::connect`] with an explicit per-slot expected
    /// fingerprint instead of the `QGSM` slot-keyed derivation — the
    /// segment-store fleet path, whose segments embed seq-keyed
    /// fingerprints ([`crate::segstore::segment_fp`]) that the
    /// coordinator knows from the manifest it loaded.
    pub fn connect_with_fingerprints(
        addrs: &[String],
        params: LmParams,
        expected: &[u64],
    ) -> Result<RemoteEngine, ShardedError> {
        assert!(!addrs.is_empty(), "remote engine needs >= 1 shard");
        assert_eq!(
            addrs.len(),
            expected.len(),
            "one expected fingerprint per shard address"
        );
        let mut shards = Vec::with_capacity(addrs.len());
        let mut doc_bases = Vec::with_capacity(addrs.len());
        let mut next = 0u64;
        let mut total_tokens = 0u64;
        for (i, addr) in addrs.iter().enumerate() {
            let shard = RemoteShard::connect(addr, 40, Duration::from_millis(50))
                .map_err(|e| wire_error(i, addr, e))?;
            let info = shard.hello().map_err(|e| wire_error(i, addr, e))?;
            let want = expected[i];
            if info.fingerprint != want {
                return Err(ShardedError::Shard {
                    shard: i,
                    source: OndiskError::MetaMismatch {
                        expected: want,
                        found: info.fingerprint,
                    },
                });
            }
            if info.shard as usize != i {
                return Err(ShardedError::Shard {
                    shard: i,
                    source: OndiskError::Malformed {
                        context: "shard process answers for a different shard index",
                    },
                });
            }
            doc_bases.push(u32::try_from(next).map_err(|_| ShardedError::Shard {
                shard: i,
                source: OndiskError::Malformed {
                    context: "doc ids overflow u32",
                },
            })?);
            next += info.num_docs as u64;
            total_tokens += info.total_tokens;
            shards.push(shard);
        }
        Ok(RemoteEngine {
            shards,
            doc_bases,
            num_docs: next as usize,
            total_tokens,
            params,
            search_threads: 1,
            phrase_cache: (0..PHRASE_CACHE_LOCKS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        })
    }

    /// Set the per-query scatter width (1 = sequential round-robin).
    /// Never changes results — only who waits on which socket.
    pub fn with_search_threads(mut self, threads: usize) -> RemoteEngine {
        self.search_threads = threads.max(1);
        self
    }

    /// The socket address of shard `shard`, when it exists.
    pub fn shard_addr(&self, shard: usize) -> Option<&str> {
        self.shards.get(shard).map(|s| s.addr())
    }

    /// The shard owning global doc `doc`.
    fn shard_of(&self, doc: u32) -> usize {
        self.doc_bases.partition_point(|&base| base <= doc) - 1
    }

    /// Ask every shard process to drain and exit (used by supervisors
    /// and tests; errors are ignored — a dead shard is already down).
    pub fn shutdown_all(&self) {
        for shard in &self.shards {
            let _ = shard.shutdown();
        }
    }

    /// The fallible search behind the backend surface. Any failing
    /// shard aborts the query with a typed error naming it.
    pub fn try_search_with(
        &self,
        query: &QueryNode,
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<SearchHit>, ShardedError> {
        let mut specs = Vec::new();
        flatten_specs(query, 1.0, &mut specs);
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let wire_query = query.to_string();

        // Phase 1: exact global per-leaf collection frequencies.
        let mut cfs = vec![0u64; specs.len()];
        for (si, shard) in self.shards.iter().enumerate() {
            let local = shard
                .leaf_cfs(&wire_query)
                .map_err(|e| wire_error(si, shard.addr(), e))?;
            if local.len() != cfs.len() {
                return Err(ShardedError::Shard {
                    shard: si,
                    source: OndiskError::Malformed {
                        context: "shard flattened a different leaf count",
                    },
                });
            }
            for (total, local_cf) in cfs.iter_mut().zip(local) {
                *total += local_cf;
            }
        }
        let probs: Vec<f64> = cfs
            .iter()
            .map(|&cf| cf as f64 / self.total_tokens.max(1) as f64)
            .collect();
        let epsilon = epsilon_for(self.total_tokens);

        // Phase 2: scatter scoring with the global inputs; each shard
        // returns its sorted top-k keyed by global doc id.
        let per_shard: Vec<Result<Vec<Scored>, ProtoError>> =
            parallel_map(self.shards.len(), self.search_threads, |si| {
                self.shards[si].score_topk(
                    &wire_query,
                    k,
                    mode,
                    self.doc_bases[si],
                    self.params.mu,
                    epsilon,
                    &probs,
                )
            });

        // Gather: merge under the same total order and keep k — the
        // in-process engine's exact merge.
        let mut merged: Vec<Scored> = Vec::new();
        for (si, result) in per_shard.into_iter().enumerate() {
            let hits = result.map_err(|e| wire_error(si, self.shards[si].addr(), e))?;
            merged.extend(hits);
        }
        merged.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        merged.truncate(k);
        Ok(merged
            .into_iter()
            .map(|s| SearchHit {
                doc: s.doc,
                score: s.score,
            })
            .collect())
    }

    /// Resolve (and cache) one phrase globally — the sharded engine's
    /// assembly, over the wire. Failures return an empty resolution
    /// without caching it (see the field docs).
    pub fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        let lock = &self.phrase_cache[phrase_cache_slot(words, self.phrase_cache.len())];
        if let Some(hit) = lock.lock().get(words) {
            return hit.clone();
        }
        let mut hits = Vec::new();
        let mut complete = true;
        for (si, shard) in self.shards.iter().enumerate() {
            match shard.resolve_phrase(words) {
                Ok(local) => {
                    let base = self.doc_bases[si];
                    hits.extend(local.into_iter().map(|(doc, tf)| PhraseHit {
                        doc: base + doc,
                        tf,
                    }));
                }
                Err(_) => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            return Arc::new(PhraseInfo {
                hits: Vec::new(),
                collection_prob: 0.0,
            });
        }
        let cf: u64 = hits.iter().map(|h| h.tf as u64).sum();
        let info = Arc::new(PhraseInfo {
            hits,
            collection_prob: cf as f64 / self.total_tokens.max(1) as f64,
        });
        lock.lock().insert(words.to_vec(), info.clone());
        info
    }
}

/// Map a transport/protocol failure to the typed per-shard error the
/// loading path already uses — the serving facade turns it into
/// `ServiceError::ArtifactShard` naming the shard and its endpoint.
fn wire_error(shard: usize, addr: &str, e: ProtoError) -> ShardedError {
    ShardedError::Shard {
        shard,
        source: OndiskError::Io(format!("{addr}: {e}")),
    }
}

impl crate::backend::RetrievalBackend for RemoteEngine {
    fn params(&self) -> LmParams {
        self.params
    }

    fn epsilon_prob(&self) -> f64 {
        epsilon_for(self.total_tokens)
    }

    fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    fn num_docs(&self) -> usize {
        self.num_docs
    }

    fn doc_len(&self, doc: u32) -> u32 {
        let si = self.shard_of(doc);
        self.shards[si]
            .doc_len(doc - self.doc_bases[si])
            .unwrap_or(0)
    }

    fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        RemoteEngine::resolve_phrase(self, words)
    }

    fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        self.search_with(query, k, SearchMode::Exact)
    }

    /// Infallible facade over [`RemoteEngine::try_search_with`]: a
    /// failed scatter degrades to no hits. Serving paths that need the
    /// typed error call `try_search_with` instead (the default the
    /// `QueryExpander` uses).
    fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        self.try_search_with(query, k, mode).unwrap_or_default()
    }

    fn try_search_with(
        &self,
        query: &QueryNode,
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<SearchHit>, ShardedError> {
        RemoteEngine::try_search_with(self, query, k, mode)
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_endpoint(&self, shard: usize) -> Option<String> {
        self.shard_addr(shard).map(|s| s.to_string())
    }

    fn phrase_cache_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.stats().unwrap_or(0) as usize)
            .sum()
    }
}
