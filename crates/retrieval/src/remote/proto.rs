//! QGRP — the length-prefixed binary frame protocol shard processes
//! speak over local sockets.
//!
//! One frame per request and per response:
//!
//! ```text
//! magic "QGRP" (4)   version u32 LE      request_id u64 LE
//! op u8              status u8           payload_len u32 LE
//! payload (payload_len bytes)
//! checksum u64 LE — FNV-1a of every preceding byte of the frame
//! ```
//!
//! * `request_id` echoes back in the response so a client can detect a
//!   desynchronized stream.
//! * `status` is 0 on requests and successful responses; 1 marks an
//!   error response whose payload is `{code, message}` (two length-
//!   prefixed strings).
//! * `payload_len` is bounded by [`MAX_PAYLOAD`]; every integer is
//!   little-endian; strings are u32 length + UTF-8 bytes; vectors are
//!   u32 count + elements. `f64`s travel as `to_bits()` so global
//!   smoothing inputs arrive **bit-exactly** — the byte-identity
//!   contract of [`crate::backend::RetrievalBackend`] extends across
//!   the socket.
//!
//! The op set mirrors the backend surface one shard can answer:
//! [`Op::Hello`] (identity + per-shard collection stats),
//! [`Op::LeafCfs`] (phase 1 of a search: local per-leaf collection
//! frequencies), [`Op::ScoreTopK`] (phase 2: score with global inputs),
//! [`Op::ResolvePhrase`], [`Op::DocLen`], [`Op::Stats`], and
//! [`Op::Shutdown`].

use crate::ondisk::fnv1a;
use std::fmt;
use std::io::{Read, Write};

/// Frame magic: "QGRP" (QueryGraph RPC).
pub const MAGIC: [u8; 4] = *b"QGRP";

/// Protocol version; both ends refuse other versions.
pub const VERSION: u32 = 1;

/// Upper bound on a frame payload (16 MiB) — a desynchronized or
/// hostile peer cannot make either end allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Fixed frame header length: magic + version + request id + op +
/// status + payload length.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 1 + 1 + 4;

/// Status byte of a successful request or response.
pub const STATUS_OK: u8 = 0;

/// Status byte of an error response (payload is `{code, message}`).
pub const STATUS_ERROR: u8 = 1;

/// Operations a shard process serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Identity handshake → fingerprint, shard index, num docs, total
    /// tokens. The client verifies the segment fingerprint before
    /// trusting the shard.
    Hello = 1,
    /// Phase 1 of a search: flatten the query locally and return this
    /// shard's per-leaf collection frequencies (flatten order).
    LeafCfs = 2,
    /// Phase 2 of a search: score locally with the caller's global
    /// smoothing inputs (μ, ε, per-leaf probabilities as f64 bits) and
    /// return the local top-k keyed by global doc id.
    ScoreTopK = 3,
    /// Resolve one exact phrase → local `(doc, tf)` hits.
    ResolvePhrase = 4,
    /// Length of one local document.
    DocLen = 5,
    /// Observability: phrase-cache entry count.
    Stats = 6,
    /// Ask the process to drain and exit.
    Shutdown = 7,
}

impl Op {
    /// Decode an op byte.
    pub fn from_u8(v: u8) -> Option<Op> {
        match v {
            1 => Some(Op::Hello),
            2 => Some(Op::LeafCfs),
            3 => Some(Op::ScoreTopK),
            4 => Some(Op::ResolvePhrase),
            5 => Some(Op::DocLen),
            6 => Some(Op::Stats),
            7 => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// Typed QGRP failure — transport, framing, or a server-reported error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The socket read/write itself failed (includes EOF mid-frame).
    Io(String),
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    OversizedPayload {
        /// The declared length.
        len: u32,
    },
    /// The frame checksum did not match its contents.
    ChecksumMismatch,
    /// The op byte names no known operation.
    UnknownOp {
        /// The byte found.
        found: u8,
    },
    /// A payload was structurally invalid (short, trailing bytes,
    /// bad UTF-8).
    Malformed {
        /// What was inconsistent.
        context: &'static str,
    },
    /// The response's request id does not echo the request's.
    IdMismatch {
        /// The id sent.
        sent: u64,
        /// The id received.
        received: u64,
    },
    /// The server answered with a typed error (status byte 1).
    Remote {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(m) => write!(f, "io: {m}"),
            ProtoError::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            ProtoError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            ProtoError::OversizedPayload { len } => {
                write!(f, "payload of {len} bytes exceeds the {MAX_PAYLOAD} cap")
            }
            ProtoError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtoError::UnknownOp { found } => write!(f, "unknown op byte {found}"),
            ProtoError::Malformed { context } => write!(f, "malformed payload: {context}"),
            ProtoError::IdMismatch { sent, received } => {
                write!(f, "request id mismatch: sent {sent}, received {received}")
            }
            ProtoError::Remote { code, message } => write!(f, "shard error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Echoed request id.
    pub request_id: u64,
    /// Raw op byte (validated by the dispatcher, not the framing).
    pub op: u8,
    /// [`STATUS_OK`] or [`STATUS_ERROR`].
    pub status: u8,
    /// Operation payload.
    pub payload: Vec<u8>,
}

/// Serialize and send one frame (header + payload + FNV-1a checksum).
pub fn write_frame(
    w: &mut impl Write,
    request_id: u64,
    op: u8,
    status: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&request_id.to_le_bytes());
    frame.push(op);
    frame.push(status);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let checksum = fnv1a(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    w.write_all(&frame)
}

/// Read and validate one frame. `Io` on transport failure (including
/// EOF mid-frame); the caller handles clean EOF *before* the first
/// header byte itself if it wants to distinguish it.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    if head[0..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&head[0..4]);
        return Err(ProtoError::BadMagic { found });
    }
    let version = u32::from_le_bytes(head[4..8].try_into().expect("bounds"));
    if version != VERSION {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    let request_id = u64::from_le_bytes(head[8..16].try_into().expect("bounds"));
    let op = head[16];
    let status = head[17];
    let payload_len = u32::from_le_bytes(head[18..22].try_into().expect("bounds"));
    if payload_len > MAX_PAYLOAD {
        return Err(ProtoError::OversizedPayload { len: payload_len });
    }
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    let mut recorded = [0u8; 8];
    r.read_exact(&mut recorded)
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    let mut whole = Vec::with_capacity(HEADER_LEN + payload.len());
    whole.extend_from_slice(&head);
    whole.extend_from_slice(&payload);
    if fnv1a(&whole) != u64::from_le_bytes(recorded) {
        return Err(ProtoError::ChecksumMismatch);
    }
    Ok(Frame {
        request_id,
        op,
        status,
        payload,
    })
}

// ── payload codec ───────────────────────────────────────────────────

/// Append a u32 (LE).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a u64 (LE).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Reader over one payload.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Malformed { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next u8.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Next u32 (LE).
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("len 4"),
        ))
    }

    /// Next u64 (LE).
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("len 8"),
        ))
    }

    /// Next length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed {
            context: "string is not UTF-8",
        })
    }

    /// The payload must be fully consumed.
    pub fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed {
                context: "trailing payload bytes",
            })
        }
    }
}

/// Encode a typed error response payload.
pub fn encode_error(code: &str, message: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, code);
    put_str(&mut buf, message);
    buf
}

/// Decode a typed error response payload into [`ProtoError::Remote`].
pub fn decode_error(payload: &[u8]) -> ProtoError {
    let mut r = PayloadReader::new(payload);
    match (r.string(), r.string()) {
        (Ok(code), Ok(message)) => ProtoError::Remote { code, message },
        _ => ProtoError::Malformed {
            context: "undecodable error payload",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello shard".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, 42, Op::Hello as u8, STATUS_OK, &payload).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.op, Op::Hello as u8);
        assert_eq!(frame.status, STATUS_OK);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn every_corruption_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, Op::Stats as u8, STATUS_OK, b"abc").unwrap();
        for i in 0..wire.len() {
            let mut corrupt = wire.clone();
            corrupt[i] ^= 0xFF;
            let result = read_frame(&mut corrupt.as_slice());
            assert!(result.is_err(), "flip at byte {i} must fail");
        }
        // Truncations: every prefix fails as Io (EOF mid-frame).
        for len in 0..wire.len() {
            assert!(
                matches!(
                    read_frame(&mut wire[..len].as_ref()),
                    Err(ProtoError::Io(_))
                ),
                "truncation to {len}"
            );
        }
    }

    #[test]
    fn oversized_payload_refused_without_allocation() {
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&VERSION.to_le_bytes());
        head.extend_from_slice(&1u64.to_le_bytes());
        head.push(Op::Hello as u8);
        head.push(STATUS_OK);
        head.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut head.as_slice()),
            Err(ProtoError::OversizedPayload { len: u32::MAX })
        ));
    }

    #[test]
    fn payload_reader_checks_bounds_and_trailing() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9);
        put_str(&mut buf, "venice");
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 9);
        assert_eq!(r.string().unwrap(), "venice");
        r.finish().unwrap();

        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 9);
        assert!(r.finish().is_err(), "trailing bytes must be refused");

        let mut r = PayloadReader::new(&buf[..2]);
        assert!(matches!(r.u32(), Err(ProtoError::Malformed { .. })));
    }

    #[test]
    fn error_payload_round_trips() {
        let payload = encode_error("bad_query", "unbalanced paren");
        match decode_error(&payload) {
            ProtoError::Remote { code, message } => {
                assert_eq!(code, "bad_query");
                assert_eq!(message, "unbalanced paren");
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn op_bytes_round_trip() {
        for op in [
            Op::Hello,
            Op::LeafCfs,
            Op::ScoreTopK,
            Op::ResolvePhrase,
            Op::DocLen,
            Op::Stats,
            Op::Shutdown,
        ] {
            assert_eq!(Op::from_u8(op as u8), Some(op));
        }
        assert_eq!(Op::from_u8(0), None);
        assert_eq!(Op::from_u8(200), None);
    }
}
