//! Shards as separate processes: the QGRP binary RPC protocol and both
//! of its ends.
//!
//! * [`proto`] — the length-prefixed, checksummed frame format and
//!   payload codec (`QGRP` magic, version, request id, op, status,
//!   bounded payload, FNV-1a trailer).
//! * [`server`] — [`ShardServer`]: serve one `QGIX` segment on a local
//!   socket (`qgx shard` wraps it in a process).
//! * [`client`] — [`RemoteShard`] (one shard's RPC client) and
//!   [`RemoteEngine`] (scatter-gather over N shard processes behind the
//!   [`RetrievalBackend`](crate::backend::RetrievalBackend) surface).
//!
//! The headline property, tested here at N ∈ {1, 2, 3, 7} and on
//! random worlds: a fleet of shard processes answers **byte-
//! identically** to the in-process [`crate::sharded::ShardedEngine`]
//! (and hence to the monolithic engine). The mechanism is shared code
//! plus exact wire statistics — both layouts score through
//! `crate::sharded::shard_topk`, and every global input crosses the
//! socket as integer counts or f64 bit patterns, never re-derived
//! floats. See `DESIGN.md` §13.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{HelloInfo, RemoteEngine, RemoteShard};
pub use server::ShardServer;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RetrievalBackend;
    use crate::engine::{SearchEngine, SearchMode};
    use crate::index::IndexBuilder;
    use crate::lm::LmParams;
    use crate::query_lang::parse;
    use crate::sharded::{doc_ranges, segment_fingerprint, ShardedEngine, ShardedError};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const DOCS: [&str; 7] = [
        "a gondola on the grand canal of venice",
        "the grand hotel beside a small canal",
        "",
        "venice has many bridges and one grand canal",
        "completely unrelated text about mountains",
        "gondola gondola gondola",
        "the grand canal venice gondola rides",
    ];

    const QUERIES: [&str; 7] = [
        "#1(grand canal)",
        "#combine(#1(grand canal) venice)",
        "#combine(gondola venice #1(small canal))",
        "#weight(0.9 venice 0.1 canal)",
        "the",
        "#combine(zzzz gondola)",
        "#1(zz yy)",
    ];

    fn shard_engines(docs: &[&str], n: usize) -> Vec<SearchEngine> {
        doc_ranges(docs.len(), n)
            .into_iter()
            .map(|range| {
                let mut b = IndexBuilder::new();
                for d in &docs[range] {
                    b.add_document(d);
                }
                SearchEngine::new(b.build())
            })
            .collect()
    }

    /// A running loopback fleet: N `ShardServer`s on ephemeral ports,
    /// each on its own thread, torn down on drop.
    struct Fleet {
        addrs: Vec<String>,
        fingerprint: u64,
        shutdowns: Vec<Arc<AtomicBool>>,
        handles: Vec<std::thread::JoinHandle<()>>,
    }

    impl Fleet {
        fn boot(docs: &[&str], n: usize, fingerprint: u64) -> Fleet {
            let mut addrs = Vec::new();
            let mut shutdowns = Vec::new();
            let mut handles = Vec::new();
            for (i, engine) in shard_engines(docs, n).into_iter().enumerate() {
                let server = ShardServer::bind(
                    "127.0.0.1:0",
                    Arc::new(engine),
                    i,
                    segment_fingerprint(fingerprint, i),
                )
                .expect("bind loopback");
                addrs.push(server.local_addr().expect("bound addr").to_string());
                shutdowns.push(server.shutdown_flag());
                handles.push(std::thread::spawn(move || {
                    server.serve().expect("serve");
                }));
            }
            Fleet {
                addrs,
                fingerprint,
                shutdowns,
                handles,
            }
        }

        fn engine(&self) -> RemoteEngine {
            RemoteEngine::connect(&self.addrs, LmParams::default(), self.fingerprint)
                .expect("connect fleet")
        }
    }

    impl Drop for Fleet {
        fn drop(&mut self) {
            for s in &self.shutdowns {
                s.store(true, Ordering::SeqCst);
            }
            for h in self.handles.drain(..) {
                h.join().expect("server thread");
            }
        }
    }

    fn mono(docs: &[&str]) -> SearchEngine {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        SearchEngine::new(b.build())
    }

    #[test]
    fn remote_search_is_bit_identical_to_in_process() {
        let m = mono(&DOCS);
        for n in [1, 2, 3, 7] {
            let fleet = Fleet::boot(&DOCS, n, 0xFEED + n as u64);
            let remote = fleet.engine();
            let sharded = ShardedEngine::from_shards(shard_engines(&DOCS, n), LmParams::default());
            for q in QUERIES {
                let q = parse(q).unwrap();
                for k in [0, 1, 3, 20] {
                    let r = remote.try_search_with(&q, k, SearchMode::Exact).unwrap();
                    assert_eq!(
                        r,
                        sharded.search_with(&q, k, SearchMode::Exact),
                        "remote vs sharded at {n} shards, k={k}, query {q:?}"
                    );
                    assert_eq!(
                        r,
                        m.search_with(&q, k, SearchMode::Exact),
                        "remote vs mono at {n} shards, k={k}, query {q:?}"
                    );
                    let pruned = remote.try_search_with(&q, k, SearchMode::Pruned).unwrap();
                    assert_eq!(
                        pruned,
                        sharded.search_with(&q, k, SearchMode::Pruned),
                        "pruned remote vs sharded at {n} shards, k={k}, query {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn remote_stats_phrases_and_doc_len_match_in_process() {
        let m = mono(&DOCS);
        for n in [1, 2, 3, 7] {
            let fleet = Fleet::boot(&DOCS, n, 7 * n as u64 + 1);
            let remote = fleet.engine();
            assert_eq!(remote.num_docs(), m.index().num_docs());
            assert_eq!(
                RetrievalBackend::total_tokens(&remote),
                m.index().total_tokens()
            );
            assert_eq!(
                RetrievalBackend::epsilon_prob(&remote).to_bits(),
                m.index().epsilon_prob().to_bits(),
                "epsilon must be bit-identical at {n} shards"
            );
            for doc in 0..DOCS.len() as u32 {
                assert_eq!(
                    RetrievalBackend::doc_len(&remote, doc),
                    m.index().doc_len(doc)
                );
            }
            for phrase in [
                vec!["grand".to_string(), "canal".to_string()],
                vec!["gondola".to_string()],
                vec!["zzzz".to_string()],
            ] {
                let a = RetrievalBackend::resolve_phrase(&m, &phrase);
                let b = remote.resolve_phrase(&phrase);
                assert_eq!(a.hits, b.hits, "{phrase:?} hits at {n} shards");
                assert_eq!(
                    a.collection_prob.to_bits(),
                    b.collection_prob.to_bits(),
                    "{phrase:?} prob at {n} shards"
                );
                let again = remote.resolve_phrase(&phrase);
                assert!(Arc::ptr_eq(&b, &again), "global cache must memoize");
            }
            assert_eq!(remote.shard_count(), n);
            assert!(remote.shard_endpoint(0).is_some());
            assert!(remote.phrase_cache_len() >= 1);
        }
    }

    #[test]
    fn wrong_fingerprint_is_typed_per_shard() {
        let fleet = Fleet::boot(&DOCS, 2, 111);
        match RemoteEngine::connect(&fleet.addrs, LmParams::default(), 999) {
            Err(ShardedError::Shard { shard: 0, source }) => {
                assert!(
                    matches!(source, crate::ondisk::OndiskError::MetaMismatch { .. }),
                    "{source:?}"
                );
            }
            Err(other) => panic!("expected shard-0 MetaMismatch, got {other:?}"),
            Ok(_) => panic!("expected shard-0 MetaMismatch, got a connected engine"),
        }
    }

    #[test]
    fn dead_shard_surfaces_as_typed_error_naming_it() {
        let fleet = Fleet::boot(&DOCS, 3, 42);
        let remote = fleet.engine();
        // Kill shard 1 out from under the engine.
        fleet.shutdowns[1].store(true, Ordering::SeqCst);
        // Wait for the server thread to actually wind down.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let q = parse("#combine(grand venice)").unwrap();
        match remote.try_search_with(&q, 5, SearchMode::Exact) {
            Err(ShardedError::Shard { shard: 1, source }) => {
                let text = source.to_string();
                assert!(
                    text.contains(fleet.addrs[1].as_str()),
                    "error must name the endpoint: {text}"
                );
            }
            other => panic!("expected shard-1 error, got {other:?}"),
        }
        // The infallible facade degrades to empty instead of panicking.
        assert!(remote.search_with(&q, 5, SearchMode::Exact).is_empty());
    }

    #[test]
    fn shutdown_op_drains_the_server() {
        let fleet = Fleet::boot(&DOCS, 1, 5);
        let shard = RemoteShard::connect(&fleet.addrs[0], 5, std::time::Duration::from_millis(20))
            .expect("connect");
        shard.shutdown().expect("shutdown acked");
        // The serve loop observes the flag and exits; Drop joins it.
    }

    proptest::proptest! {
        /// Process-boundary equivalence on random worlds at the pinned
        /// shard counts {1, 2, 3, 7}.
        #[test]
        fn remote_equals_in_process_on_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 0..16),
                1..12,
            ),
            npick in 0usize..4,
            qpick in 0u8..6,
        ) {
            const VOCAB: [&str; 6] =
                ["alpha", "beta", "gamma", "delta", "beta gamma", "alpha beta"];
            let texts: Vec<String> = docs
                .iter()
                .map(|d| {
                    d.iter()
                        .map(|&x| VOCAB[x as usize])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let n = [1usize, 2, 3, 7][npick];
            let fleet = Fleet::boot(&refs, n, 0xC0FFEE + n as u64);
            let remote = fleet.engine();
            let sharded = ShardedEngine::from_shards(
                shard_engines(&refs, n),
                LmParams::default(),
            );
            let queries = [
                "#combine(alpha beta)",
                "#1(beta gamma)",
                "#weight(0.7 alpha 0.3 #1(alpha beta))",
                "#combine(#1(gamma delta) delta)",
                "delta",
                "#combine(alpha #1(beta gamma) zeta)",
            ];
            let q = parse(queries[qpick as usize % queries.len()]).unwrap();
            for mode in [SearchMode::Exact, SearchMode::Pruned] {
                let r = remote.try_search_with(&q, 10, mode).unwrap();
                proptest::prop_assert_eq!(
                    r,
                    sharded.search_with(&q, 10, mode),
                    "mode {:?} at {} shards", mode, n
                );
            }
        }
    }
}
