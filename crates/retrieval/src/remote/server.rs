//! The shard side of QGRP: serve one `QGIX` segment as a standalone
//! process on a local socket.
//!
//! [`ShardServer`] owns a [`SearchEngine`] over one segment plus its
//! identity (shard index + embedded segment fingerprint) and answers
//! the per-shard half of the [`crate::backend::RetrievalBackend`]
//! surface. All *global* inputs — μ, the smoothing floor, per-leaf
//! collection probabilities, the shard's global doc-id base — arrive
//! bit-exactly on the wire with each [`Op::ScoreTopK`]; scoring runs
//! through the same `crate::sharded::shard_topk` the in-process
//! [`crate::sharded::ShardedEngine`] scatter uses, so a fleet of shard
//! processes is byte-identical to the in-process engine by shared code,
//! not by parallel implementation.
//!
//! The accept loop mirrors `core::http`'s lifecycle patterns: a
//! non-blocking listener polled against a shutdown flag, short read
//! timeouts so connection threads observe shutdown between frames, and
//! scoped connection threads that drain before `serve` returns. Every
//! malformed frame or failed op is answered with a typed error frame —
//! a hostile or desynchronized peer cannot panic a shard.

use crate::engine::{flatten_specs, LeafSpec, SearchEngine, SearchMode};
use crate::query_lang::parse;
use crate::remote::proto::{
    encode_error, put_u32, put_u64, read_frame, write_frame, Frame, Op, PayloadReader, ProtoError,
    STATUS_ERROR, STATUS_OK,
};
use crate::sharded::{shard_topk, ShardLeafView};
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the accept loop and idle connections poll the shutdown
/// flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Per-read budget once a frame has begun arriving — a peer that
/// stalls mid-frame for this long is dropped rather than parked
/// forever (the slowloris posture `core::http` takes, applied to
/// frames).
const FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// One shard process's server: a [`SearchEngine`] over one segment,
/// addressable over QGRP.
pub struct ShardServer {
    listener: TcpListener,
    engine: Arc<SearchEngine>,
    shard: u32,
    fingerprint: u64,
    shutdown: Arc<AtomicBool>,
}

impl ShardServer {
    /// Bind on `addr` (use port 0 for an ephemeral port) serving
    /// `engine` as shard `shard` with the segment's embedded
    /// `fingerprint`.
    pub fn bind(
        addr: &str,
        engine: Arc<SearchEngine>,
        shard: usize,
        fingerprint: u64,
    ) -> std::io::Result<ShardServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(ShardServer {
            listener,
            engine,
            shard: shard as u32,
            fingerprint,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shutdown flag: set it (from a signal watcher, a stdin-EOF
    /// watcher, or an [`Op::Shutdown`] frame) and `serve` drains and
    /// returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Serve until the shutdown flag is set. Each connection runs on a
    /// scoped thread; all of them observe shutdown within one poll
    /// interval and are joined before this returns.
    pub fn serve(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move || self.handle_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
        });
        Ok(())
    }

    /// One connection: frames in, frames out, until EOF, shutdown, or a
    /// transport error. While idle the thread peeks with a short
    /// timeout so it observes shutdown between frames; once a frame has
    /// begun it reads with a generous per-frame budget. Framing errors
    /// that leave the stream position undefined close the connection.
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut stream = stream;
        while !self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
            let mut first = [0u8; 1];
            match stream.peek(&mut first) {
                Ok(0) => return, // clean EOF between frames
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // idle; re-check shutdown
                }
                Err(_) => return,
            }
            let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
            let frame = match read_frame(&mut stream) {
                Ok(frame) => frame,
                Err(_) => return, // stalled, desync, or hostile: close
            };
            let keep = self.answer(&mut stream, frame);
            if !keep {
                return;
            }
        }
    }

    /// Dispatch one frame and write the response. Returns `false` when
    /// the connection (or the whole server) should wind down.
    fn answer(&self, stream: &mut TcpStream, frame: Frame) -> bool {
        if frame.status != STATUS_OK {
            let payload = encode_error("bad_status", "request frames must carry status 0");
            return write_frame(stream, frame.request_id, frame.op, STATUS_ERROR, &payload).is_ok();
        }
        let Some(op) = Op::from_u8(frame.op) else {
            let payload = encode_error("unknown_op", &format!("unknown op byte {}", frame.op));
            return write_frame(stream, frame.request_id, frame.op, STATUS_ERROR, &payload).is_ok();
        };
        let result = self.dispatch(op, &frame.payload);
        let (status, payload) = match &result {
            Ok(payload) => (STATUS_OK, payload.clone()),
            Err((code, message)) => (STATUS_ERROR, encode_error(code, message)),
        };
        let wrote = write_frame(stream, frame.request_id, frame.op, status, &payload).is_ok();
        let _ = stream.flush();
        if op == Op::Shutdown && result.is_ok() {
            self.shutdown.store(true, Ordering::SeqCst);
            return false;
        }
        wrote
    }

    /// Execute one op against the local segment.
    fn dispatch(&self, op: Op, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        match op {
            Op::Hello => self.op_hello(payload),
            Op::LeafCfs => self.op_leaf_cfs(payload),
            Op::ScoreTopK => self.op_score_topk(payload),
            Op::ResolvePhrase => self.op_resolve_phrase(payload),
            Op::DocLen => self.op_doc_len(payload),
            Op::Stats => self.op_stats(payload),
            Op::Shutdown => Ok(Vec::new()),
        }
    }

    fn op_hello(&self, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        expect_empty(payload)?;
        let mut out = Vec::new();
        put_u64(&mut out, self.fingerprint);
        put_u32(&mut out, self.shard);
        put_u32(&mut out, self.engine.index().num_docs() as u32);
        put_u64(&mut out, self.engine.index().total_tokens());
        Ok(out)
    }

    /// Phase 1: this shard's per-leaf collection frequencies, in the
    /// shared `flatten_specs` order. Integer counts — the coordinator
    /// sums them across shards exactly.
    fn op_leaf_cfs(&self, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        let mut r = PayloadReader::new(payload);
        let query = read_query(&mut r)?;
        r.finish().map_err(malformed)?;
        let mut specs = Vec::new();
        flatten_specs(&query, 1.0, &mut specs);
        let mut out = Vec::new();
        put_u32(&mut out, specs.len() as u32);
        for (_, spec) in &specs {
            put_u64(&mut out, self.leaf_cf(spec));
        }
        Ok(out)
    }

    /// Phase 2: score this shard's candidates with the caller's global
    /// smoothing inputs, via the shared [`shard_topk`].
    fn op_score_topk(&self, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        let mut r = PayloadReader::new(payload);
        let query = read_query(&mut r)?;
        let k = r.u32().map_err(malformed)? as usize;
        let mode = match r.u8().map_err(malformed)? {
            0 => SearchMode::Exact,
            1 => SearchMode::Pruned,
            other => {
                return Err((
                    "bad_mode".to_string(),
                    format!("unknown search mode byte {other}"),
                ))
            }
        };
        let base = r.u32().map_err(malformed)?;
        let mu = f64::from_bits(r.u64().map_err(malformed)?);
        let epsilon = f64::from_bits(r.u64().map_err(malformed)?);
        let leaf_count = r.u32().map_err(malformed)? as usize;
        let mut probs = Vec::with_capacity(leaf_count);
        for _ in 0..leaf_count {
            probs.push(f64::from_bits(r.u64().map_err(malformed)?));
        }
        r.finish().map_err(malformed)?;

        let mut specs = Vec::new();
        flatten_specs(&query, 1.0, &mut specs);
        if specs.len() != probs.len() {
            return Err((
                "leaf_mismatch".to_string(),
                format!(
                    "query flattens to {} leaves but {} probabilities arrived",
                    specs.len(),
                    probs.len()
                ),
            ));
        }
        // Resolve each leaf's local tf map, then score through the one
        // shared per-shard scorer — identical float ops to in-process.
        let tf_maps: Vec<HashMap<u32, u32>> =
            specs.iter().map(|(_, spec)| self.leaf_tf(spec)).collect();
        let views: Vec<ShardLeafView<'_>> = tf_maps
            .iter()
            .zip(specs.iter().zip(&probs))
            .map(|(tf, ((weight, _), &collection_prob))| ShardLeafView {
                weight: *weight,
                collection_prob,
                tf,
            })
            .collect();
        let params = crate::lm::LmParams { mu };
        let sorted =
            shard_topk(&self.engine, base, &specs, &views, params, epsilon, k, mode).into_sorted();
        let mut out = Vec::new();
        put_u32(&mut out, sorted.len() as u32);
        for s in sorted {
            put_u32(&mut out, s.doc);
            put_u64(&mut out, s.score.to_bits());
        }
        Ok(out)
    }

    fn op_resolve_phrase(&self, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        let mut r = PayloadReader::new(payload);
        let count = r.u32().map_err(malformed)? as usize;
        let mut words = Vec::with_capacity(count);
        for _ in 0..count {
            words.push(r.string().map_err(malformed)?);
        }
        r.finish().map_err(malformed)?;
        let info = self.engine.phrase_info(&words);
        let mut out = Vec::new();
        put_u32(&mut out, info.hits.len() as u32);
        for h in &info.hits {
            put_u32(&mut out, h.doc);
            put_u32(&mut out, h.tf);
        }
        Ok(out)
    }

    fn op_doc_len(&self, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        let mut r = PayloadReader::new(payload);
        let doc = r.u32().map_err(malformed)?;
        r.finish().map_err(malformed)?;
        let mut out = Vec::new();
        put_u32(&mut out, self.engine.index().doc_len(doc));
        Ok(out)
    }

    fn op_stats(&self, payload: &[u8]) -> Result<Vec<u8>, (String, String)> {
        expect_empty(payload)?;
        let mut out = Vec::new();
        put_u64(&mut out, self.engine.phrase_cache_len() as u64);
        Ok(out)
    }

    /// This shard's collection frequency for one leaf (integer count).
    fn leaf_cf(&self, spec: &LeafSpec<'_>) -> u64 {
        match spec {
            LeafSpec::Term(t) => self
                .engine
                .index()
                .postings_for(t)
                .map(|l| l.collection_freq())
                .unwrap_or(0),
            LeafSpec::Phrase(words) => self
                .engine
                .phrase_info(words)
                .hits
                .iter()
                .map(|h| h.tf as u64)
                .sum(),
        }
    }

    /// This shard's local `doc → tf` map for one leaf — the same
    /// resolution `ShardedEngine::resolve_global_leaf` performs per
    /// shard.
    fn leaf_tf(&self, spec: &LeafSpec<'_>) -> HashMap<u32, u32> {
        match spec {
            LeafSpec::Term(t) => self
                .engine
                .index()
                .postings_for(t)
                .map(|l| l.iter().map(|p| (p.doc, p.tf())).collect())
                .unwrap_or_default(),
            LeafSpec::Phrase(words) => self
                .engine
                .phrase_info(words)
                .hits
                .iter()
                .map(|h| (h.doc, h.tf))
                .collect(),
        }
    }
}

fn expect_empty(payload: &[u8]) -> Result<(), (String, String)> {
    PayloadReader::new(payload).finish().map_err(malformed)
}

fn malformed(e: ProtoError) -> (String, String) {
    ("malformed".to_string(), e.to_string())
}

/// Decode and parse the query string all search ops carry. The wire
/// form is `QueryNode`'s `Display`, which round-trips through `parse`
/// exactly (pinned in `query_lang`), so both ends flatten the same AST.
fn read_query(r: &mut PayloadReader<'_>) -> Result<crate::query_lang::QueryNode, (String, String)> {
    let text = r.string().map_err(malformed)?;
    parse(&text).map_err(|e| ("bad_query".to_string(), e.to_string()))
}

/// Announce the bound address on stdout (`qgx shard` prints this line;
/// the supervisor reads it to learn the ephemeral port).
pub fn announce(addr: &std::net::SocketAddr) {
    println!("QGRP listening {addr}");
    let _ = std::io::stdout().flush();
}

/// Parse the address out of an [`announce`] line.
pub fn parse_announce(line: &str) -> Option<String> {
    line.trim()
        .strip_prefix("QGRP listening ")
        .map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_line_round_trips() {
        let addr: std::net::SocketAddr = "127.0.0.1:4567".parse().unwrap();
        let line = format!("QGRP listening {addr}");
        assert_eq!(parse_announce(&line), Some("127.0.0.1:4567".to_string()));
        assert_eq!(parse_announce("something else"), None);
    }
}
