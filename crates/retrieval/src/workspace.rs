//! Per-query score workspace — the §2.2 hill climb's fast path.
//!
//! [`crate::engine::SearchEngine::search`] re-flattens the query AST,
//! re-matches every title phrase against the cache, and rebuilds a
//! `HashMap<doc, tf>` per leaf on **every** call. The hill climb calls
//! it thousands of times per query over candidate sets drawn from a
//! small, fixed pool of article titles, so almost all of that work is
//! identical between calls.
//!
//! [`ScoreWorkspace`] hoists it out of the loop: each distinct title is
//! resolved **once** into a [`LeafId`] — phrase postings, collection
//! probability, and a dense vector of per-document log-beliefs over the
//! workspace's document universe (the union of every added leaf's
//! matching documents). Evaluating a candidate set then reduces to
//! summing precomputed per-leaf contributions over the union of the
//! chosen leaves' documents: no phrase matching, no hashing, no
//! allocation proportional to the index.
//!
//! The output contract is exact: [`ScoreWorkspace::search`] returns
//! bit-identical hits to running the engine on
//! [`QueryNode::phrases_of_titles`] of the same titles, because it
//! performs the same floating-point operations in the same order —
//! `score += weight · log_belief(tf, len, p)` per leaf, leaves in title
//! order, candidates in ascending document order, the same [`TopK`].
//! The pipeline's byte-identical-`Report` contract rests on this.

use crate::backend::RetrievalBackend;
use crate::engine::{SearchEngine, SearchHit};
use crate::lm::log_belief_with_floor;
use crate::query_lang::QueryNode;
use crate::topk::TopK;
use querygraph_text::tokenize;
use std::collections::HashMap;

/// Handle to one resolved title phrase inside a [`ScoreWorkspace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafId(u32);

/// One resolved phrase leaf: where it matches and what each document of
/// the universe scores against it.
struct WsLeaf {
    /// `(doc, slot)` of every document the phrase occurs in, ascending
    /// by doc id.
    matches: Vec<(u32, u32)>,
    /// `tf` per entry of `matches` (parallel vector), kept so lazily
    /// grown universes can recompute beliefs exactly.
    match_tfs: Vec<u32>,
    /// Exact phrase collection probability.
    collection_prob: f64,
    /// Log-belief per universe slot (lazily extended as the universe
    /// grows): `log_belief(tf, len, collection_prob)` with `tf = 0` for
    /// non-matching documents.
    beliefs: Vec<f64>,
}

/// Per-query scoring workspace over a shared
/// [`RetrievalBackend`] (defaulting to the monolithic
/// [`SearchEngine`]; the sharded engine plugs in through the same
/// trait, with bit-identical output by the backend contract).
///
/// Single-threaded by design: the pipeline builds one per query on the
/// worker that owns it. The backend's phrase cache still de-duplicates
/// resolution work *across* workspaces.
pub struct ScoreWorkspace<'a, B: RetrievalBackend + ?Sized = SearchEngine> {
    engine: &'a B,
    leaves: Vec<WsLeaf>,
    /// Tokenized title → leaf, so a title is resolved exactly once.
    leaf_by_words: HashMap<Vec<String>, LeafId>,
    /// Document universe: `(doc, len)` per slot, in first-seen order.
    docs: Vec<(u32, u32)>,
    slot_by_doc: HashMap<u32, u32>,
    /// Distinct phrase resolutions performed (observability; the unit
    /// tests assert one per distinct title).
    resolutions: usize,
    /// Reused per-search buffers (the hill climb searches thousands of
    /// times per query; nothing here may allocate per call).
    scratch: Scratch,
}

/// Reusable buffers for [`ScoreWorkspace::search`].
#[derive(Default)]
struct Scratch {
    /// Candidate `(doc, slot)` pairs of the current search.
    cand: Vec<(u32, u32)>,
    /// Score accumulator parallel to `cand`.
    scores: Vec<f64>,
    /// Per-slot visit stamp: `stamps[slot] == epoch` ⇔ slot already a
    /// candidate this search (O(1) dedup without hashing or a
    /// multiset sort).
    stamps: Vec<u64>,
    epoch: u64,
}

impl<'a, B: RetrievalBackend + ?Sized> ScoreWorkspace<'a, B> {
    /// Empty workspace over `engine`.
    pub fn new(engine: &'a B) -> Self {
        ScoreWorkspace {
            engine,
            leaves: Vec::new(),
            leaf_by_words: HashMap::new(),
            docs: Vec::new(),
            slot_by_doc: HashMap::new(),
            resolutions: 0,
            scratch: Scratch::default(),
        }
    }

    /// Resolve `title` into a leaf, reusing an existing one when the
    /// tokenized words match. Returns `None` when the title normalizes
    /// to nothing (mirroring [`QueryNode::phrases_of_titles`], which
    /// skips such titles).
    pub fn add_title(&mut self, title: &str) -> Option<LeafId> {
        let words = tokenize(title);
        if words.is_empty() {
            return None;
        }
        if let Some(&id) = self.leaf_by_words.get(&words) {
            return Some(id);
        }
        let info = self.engine.resolve_phrase(&words);
        self.resolutions += 1;

        let mut matches = Vec::with_capacity(info.hits.len());
        let mut match_tfs = Vec::with_capacity(info.hits.len());
        for hit in &info.hits {
            let slot = match self.slot_by_doc.get(&hit.doc) {
                Some(&s) => s,
                None => {
                    let s = self.docs.len() as u32;
                    self.docs.push((hit.doc, self.engine.doc_len(hit.doc)));
                    self.slot_by_doc.insert(hit.doc, s);
                    s
                }
            };
            matches.push((hit.doc, slot));
            match_tfs.push(hit.tf);
        }

        let id = LeafId(self.leaves.len() as u32);
        self.leaves.push(WsLeaf {
            matches,
            match_tfs,
            collection_prob: info.collection_prob,
            beliefs: Vec::new(),
        });
        self.leaf_by_words.insert(words, id);
        Some(id)
    }

    /// Extend `leaf`'s belief vector to cover the current universe.
    fn ensure_beliefs(&mut self, leaf: LeafId) {
        let params = self.engine.params();
        let epsilon = self.engine.epsilon_prob();
        let l = &mut self.leaves[leaf.0 as usize];
        let from = l.beliefs.len();
        if from == self.docs.len() {
            return;
        }
        // Background beliefs for every new slot…
        l.beliefs.extend(
            self.docs[from..]
                .iter()
                .map(|&(_, len)| log_belief_with_floor(params, epsilon, 0, len, l.collection_prob)),
        );
        // …then overwrite the slots this leaf actually matches.
        for (i, &(_, slot)) in l.matches.iter().enumerate() {
            if slot as usize >= from {
                let (_, len) = self.docs[slot as usize];
                l.beliefs[slot as usize] =
                    log_belief_with_floor(params, epsilon, l.match_tfs[i], len, l.collection_prob);
            }
        }
    }

    /// Score the `#combine` of the given leaves' phrases, returning the
    /// best `k` documents — bit-identical to
    /// `engine.search(&QueryNode::phrases_of_titles(titles), k)` for the
    /// titles the leaves were created from (duplicate leaves count
    /// twice, exactly like duplicate phrases in the AST).
    pub fn search(&mut self, leaf_ids: &[LeafId], k: usize) -> Vec<SearchHit> {
        if leaf_ids.is_empty() {
            return Vec::new();
        }
        for &id in leaf_ids {
            self.ensure_beliefs(id);
        }
        let Self {
            leaves, scratch, ..
        } = self;

        // Candidates: union of the chosen leaves' documents, ascending
        // by doc id (the engine sorts + dedups the same union). Stamps
        // dedup in O(1) per match so the sort runs over the union, not
        // the multiset.
        scratch.stamps.resize(self.docs.len(), 0);
        scratch.epoch += 1;
        scratch.cand.clear();
        for &id in leaf_ids {
            for &(doc, slot) in &leaves[id.0 as usize].matches {
                let stamp = &mut scratch.stamps[slot as usize];
                if *stamp != scratch.epoch {
                    *stamp = scratch.epoch;
                    scratch.cand.push((doc, slot));
                }
            }
        }
        scratch.cand.sort_unstable();

        // Leaf-outer accumulation: each candidate's score still sums in
        // leaf order (scores[ci] gathers one `weight · belief` term per
        // leaf pass, in `leaf_ids` order), so the floating-point result
        // is bit-identical to the engine's doc-outer loop — but each
        // pass streams one dense belief vector instead of hopping
        // between leaves per document.
        let weight = 1.0 / leaf_ids.len() as f64;
        scratch.scores.clear();
        scratch.scores.resize(scratch.cand.len(), 0.0);
        for &id in leaf_ids {
            let beliefs = &leaves[id.0 as usize].beliefs;
            accumulate_chunked(&scratch.cand, beliefs, weight, &mut scratch.scores);
        }

        let mut topk = TopK::new(k);
        for (&(doc, _), &score) in scratch.cand.iter().zip(scratch.scores.iter()) {
            topk.push(doc, score);
        }
        topk.into_sorted()
            .into_iter()
            .map(|s| SearchHit {
                doc: s.doc,
                score: s.score,
            })
            .collect()
    }

    /// Number of distinct phrase resolutions performed so far.
    pub fn resolutions(&self) -> usize {
        self.resolutions
    }

    /// Number of resolved leaves (≤ titles added; duplicates collapse).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Size of the document universe covered so far.
    pub fn universe_size(&self) -> usize {
        self.docs.len()
    }

    /// The reference query the engine would run for `titles` — used by
    /// the equivalence tests.
    pub fn reference_query<S: AsRef<str>>(titles: &[S]) -> QueryNode {
        QueryNode::phrases_of_titles(titles)
    }
}

/// Lane width of the dense accumulation loop: eight f64 = one cache
/// line, and a width LLVM turns into packed mul/add on every SIMD ISA
/// the repro targets.
const LANES: usize = 8;

/// The dominant inner loop of the hill climb:
/// `scores[i] += weight · beliefs[slot(cand[i])]` for every candidate.
///
/// Split into fixed-width `[f64; LANES]` chunks — gather the lane's
/// beliefs, then one multiply-add per element — so the compiler can
/// autovectorize the arithmetic even though the belief access is a
/// gather. Each element is touched by exactly one multiply and one add,
/// just like the straight-line loop, and elements are independent, so
/// the result is **bit-identical** for any chunking; the byte-identity
/// golden pins hold (the equivalence proptests below run through this
/// path).
fn accumulate_chunked(cand: &[(u32, u32)], beliefs: &[f64], weight: f64, scores: &mut [f64]) {
    debug_assert_eq!(cand.len(), scores.len());
    let whole = cand.len() - cand.len() % LANES;
    let (cand_head, cand_tail) = cand.split_at(whole);
    let (scores_head, scores_tail) = scores.split_at_mut(whole);
    for (c, s) in cand_head
        .chunks_exact(LANES)
        .zip(scores_head.chunks_exact_mut(LANES))
    {
        let mut lane = [0.0f64; LANES];
        for i in 0..LANES {
            lane[i] = beliefs[c[i].1 as usize];
        }
        for i in 0..LANES {
            s[i] += weight * lane[i];
        }
    }
    for (&(_, slot), score) in cand_tail.iter().zip(scores_tail.iter_mut()) {
        *score += weight * beliefs[slot as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    #[test]
    fn chunked_accumulation_matches_scalar_loop() {
        // Lengths straddling every remainder class around the lane
        // width, including the empty and sub-lane cases.
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 64, 100] {
            let beliefs: Vec<f64> = (0..n).map(|i| -((i + 1) as f64).ln()).collect();
            // Slots deliberately permuted: the gather must not assume
            // cand order matches slot order.
            let cand: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (n as u32 - 1 - i))).collect();
            let weight = 1.0 / 3.0;
            let mut chunked = vec![0.125f64; n];
            accumulate_chunked(&cand, &beliefs, weight, &mut chunked);
            let mut scalar = vec![0.125f64; n];
            for (&(_, slot), score) in cand.iter().zip(scalar.iter_mut()) {
                *score += weight * beliefs[slot as usize];
            }
            let chunked_bits: Vec<u64> = chunked.iter().map(|f| f.to_bits()).collect();
            let scalar_bits: Vec<u64> = scalar.iter().map(|f| f.to_bits()).collect();
            assert_eq!(chunked_bits, scalar_bits, "n={n}");
        }
    }

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add_document("a gondola on the grand canal of venice"); // 0
        b.add_document("the grand hotel beside a small canal"); // 1
        b.add_document("venice has many bridges and one grand canal"); // 2
        b.add_document("completely unrelated text about mountains"); // 3
        b.add_document("gondola gondola gondola"); // 4
        SearchEngine::new(b.build())
    }

    fn ws_search(e: &SearchEngine, titles: &[&str], k: usize) -> Vec<SearchHit> {
        let mut ws = ScoreWorkspace::new(e);
        let leaves: Vec<LeafId> = titles.iter().filter_map(|t| ws.add_title(t)).collect();
        ws.search(&leaves, k)
    }

    #[test]
    fn matches_engine_on_single_title() {
        let e = engine();
        let fast = ws_search(&e, &["Grand Canal"], 10);
        let slow = e.search(&QueryNode::phrases_of_titles(&["Grand Canal"]), 10);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matches_engine_on_title_combinations() {
        let e = engine();
        let title_sets: &[&[&str]] = &[
            &["Grand Canal", "Gondola"],
            &["Gondola", "Grand Canal"],
            &["Venice", "Grand Canal", "Gondola"],
            &["Venice"],
            &["Nonexistent Phrase", "Gondola"],
        ];
        for titles in title_sets {
            let fast = ws_search(&e, titles, 15);
            let slow = e.search(&QueryNode::phrases_of_titles(titles), 15);
            assert_eq!(fast, slow, "diverged for {titles:?}");
        }
    }

    #[test]
    fn empty_and_unmatchable_titles() {
        let e = engine();
        let mut ws = ScoreWorkspace::new(&e);
        assert_eq!(ws.add_title("!!!"), None, "normalizes to nothing");
        assert!(ws.search(&[], 5).is_empty());
        // A title whose words are unknown still becomes a leaf (it
        // contributes background mass, like the engine's empty leaf)…
        let ghost = ws.add_title("zzzz qqqq").unwrap();
        // …but alone it matches no documents.
        assert!(ws.search(&[ghost], 5).is_empty());
    }

    #[test]
    fn unknown_leaf_drags_scores_like_engine() {
        let e = engine();
        let fast = ws_search(&e, &["Gondola", "zzzz qqqq"], 10);
        let slow = e.search(&QueryNode::phrases_of_titles(&["Gondola", "zzzz qqqq"]), 10);
        assert_eq!(fast, slow);
        assert!(!fast.is_empty(), "gondola docs still retrieved");
    }

    #[test]
    fn one_resolution_per_distinct_title() {
        let e = engine();
        let mut ws = ScoreWorkspace::new(&e);
        let a = ws.add_title("Grand Canal").unwrap();
        let b = ws.add_title("grand canal").unwrap(); // same after tokenize
        let c = ws.add_title("Gondola").unwrap();
        assert_eq!(a, b, "equal tokenizations share a leaf");
        assert_ne!(a, c);
        assert_eq!(ws.resolutions(), 2);
        assert_eq!(ws.leaf_count(), 2);
        // Re-searching never resolves again.
        ws.search(&[a, c], 10);
        ws.search(&[c], 10);
        assert_eq!(ws.resolutions(), 2);
    }

    #[test]
    fn universe_grows_lazily_and_backfills() {
        let e = engine();
        let mut ws = ScoreWorkspace::new(&e);
        let gondola = ws.add_title("Gondola").unwrap();
        let first = ws.search(&[gondola], 10);
        let before = ws.universe_size();
        // New leaf brings new docs into the universe…
        let canal = ws.add_title("Grand Canal").unwrap();
        assert!(ws.universe_size() >= before);
        // …and combined scoring still matches the engine exactly.
        let fast = ws.search(&[gondola, canal], 10);
        let slow = e.search(
            &QueryNode::phrases_of_titles(&["Gondola", "Grand Canal"]),
            10,
        );
        assert_eq!(fast, slow);
        // The original single-leaf result is unchanged by growth.
        assert_eq!(ws.search(&[gondola], 10), first);
    }

    #[test]
    fn duplicate_leaves_count_twice() {
        let e = engine();
        let mut ws = ScoreWorkspace::new(&e);
        let g = ws.add_title("Gondola").unwrap();
        let v = ws.add_title("Venice").unwrap();
        let fast = ws.search(&[g, g, v], 10);
        let slow = e.search(
            &QueryNode::phrases_of_titles(&["Gondola", "Gondola", "Venice"]),
            10,
        );
        assert_eq!(fast, slow);
    }

    proptest::proptest! {
        /// Workspace scoring must agree with the engine on arbitrary
        /// small worlds and title subsets, in any order.
        #[test]
        fn equivalent_to_engine_on_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 1..12),
                1..10,
            ),
            picks in proptest::collection::vec(0u8..5, 1..6),
        ) {
            let word = |b: u8| ["alpha", "beta", "gamma", "delta", "beta gamma"][b as usize];
            let mut b = IndexBuilder::new();
            for d in &docs {
                let text: Vec<&str> = d.iter().map(|&x| word(x)).collect();
                b.add_document(&text.join(" "));
            }
            let e = SearchEngine::new(b.build());
            let titles: Vec<&str> = picks.iter().map(|&x| word(x)).collect();
            let mut ws = ScoreWorkspace::new(&e);
            let leaves: Vec<LeafId> =
                titles.iter().filter_map(|t| ws.add_title(t)).collect();
            let fast = ws.search(&leaves, 15);
            let slow = e.search(&QueryNode::phrases_of_titles(&titles), 15);
            proptest::prop_assert_eq!(fast, slow);
        }
    }
}
