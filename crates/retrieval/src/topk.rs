//! Deterministic bounded top-k selection.
//!
//! Retrieval results must be reproducible run to run: equal scores are
//! broken by ascending doc id, matching what a stable sort over the full
//! score list would produce. Floating-point scores are compared
//! totally via `f64::total_cmp` (scores are finite by construction —
//! the LM layer never emits NaN).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Document id.
    pub doc: u32,
    /// Retrieval score (higher is better).
    pub score: f64,
}

/// Heap entry ordered so the heap root is the *worst* kept result.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(Scored);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by "badness": lower score = greater entry. Ties:
        // higher doc id = greater entry (so it is evicted first).
        match other.0.score.total_cmp(&self.0.score) {
            Ordering::Equal => self.0.doc.cmp(&other.0.doc),
            o => o,
        }
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k collector.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Collector that keeps the best `k` entries.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one scored document.
    pub fn push(&mut self, doc: u32, score: f64) {
        if self.k == 0 {
            return;
        }
        let entry = HeapEntry(Scored { doc, score });
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry < *worst {
                self.heap.push(entry);
                self.heap.pop();
            }
        }
    }

    /// The current pruning floor: the worst entry that would survive
    /// [`TopK::into_sorted`] right now, available only once the
    /// collector holds `k` entries (before that, every candidate is
    /// kept, so there is no floor to beat). A candidate whose score
    /// upper bound is strictly below `floor().score` can be skipped
    /// without being scored — it could never displace the root under
    /// the total order (descending score, ties by ascending doc id).
    /// This is the threshold the WAND-style pruned search loops test
    /// against.
    pub fn floor(&self) -> Option<Scored> {
        if self.k > 0 && self.heap.len() == self.k {
            self.heap.peek().map(|e| e.0)
        } else {
            None
        }
    }

    /// Finish: results sorted by descending score, ties by ascending doc
    /// id.
    pub fn into_sorted(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        v
    }
}

/// Candidate entry for [`BoundHeap`]: ordered so the heap root is the
/// candidate the pruned loop must visit next (highest upper bound,
/// ties by ascending doc id).
#[derive(Debug, Clone, Copy, PartialEq)]
struct BoundEntry {
    ub: f64,
    doc: u32,
}

impl Eq for BoundEntry {}

impl Ord for BoundEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by upper bound; ties: lower doc id = greater entry,
        // so it pops first.
        match self.ub.total_cmp(&other.ub) {
            Ordering::Equal => other.doc.cmp(&self.doc),
            o => o,
        }
    }
}

impl PartialOrd for BoundEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy descending-bound candidate stream for the pruned search loops.
///
/// Pops `(upper_bound, doc)` pairs in exactly the order a full
/// `sort_unstable_by` (bound descending, doc ascending) would visit
/// them, but builds in O(n) and pays O(log n) only per pop — so a
/// WAND-style loop that stops after `m` candidates costs O(n + m log n)
/// instead of O(n log n). With typical `m ≈ k ≪ n` the sort was the
/// dominant cost of the pruned path on broad queries.
#[derive(Debug)]
pub(crate) struct BoundHeap {
    heap: BinaryHeap<BoundEntry>,
}

impl BoundHeap {
    /// Heapify a candidate list in O(n).
    pub(crate) fn from_candidates(candidates: Vec<(f64, u32)>) -> Self {
        BoundHeap {
            heap: BinaryHeap::from(
                candidates
                    .into_iter()
                    .map(|(ub, doc)| BoundEntry { ub, doc })
                    .collect::<Vec<_>>(),
            ),
        }
    }

    /// Next candidate in (bound descending, doc ascending) order.
    pub(crate) fn pop(&mut self) -> Option<(f64, u32)> {
        self.heap.pop().map(|e| (e.ub, e.doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for (d, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 2.0)] {
            t.push(d, s);
        }
        let out = t.into_sorted();
        let docs: Vec<u32> = out.iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![1, 3, 2]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut t = TopK::new(2);
        for d in [5, 1, 9, 3] {
            t.push(d, 7.0);
        }
        let docs: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![1, 3]);
    }

    #[test]
    fn fewer_than_k() {
        let mut t = TopK::new(10);
        t.push(4, 1.0);
        t.push(2, 2.0);
        let docs: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![2, 4]);
    }

    #[test]
    fn zero_k() {
        let mut t = TopK::new(0);
        t.push(0, 1.0);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn matches_full_sort_reference() {
        let scores: Vec<(u32, f64)> = (0..100).map(|i| (i, ((i * 37) % 11) as f64)).collect();
        let mut t = TopK::new(10);
        for &(d, s) in &scores {
            t.push(d, s);
        }
        let fast: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        let mut reference = scores;
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let slow: Vec<u32> = reference.iter().take(10).map(|&(d, _)| d).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn negative_scores_ordered_correctly() {
        let mut t = TopK::new(2);
        t.push(0, -5.0);
        t.push(1, -1.0);
        t.push(2, -3.0);
        let docs: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![1, 2]);
    }

    #[test]
    fn floor_appears_only_when_full() {
        let mut t = TopK::new(2);
        assert!(t.floor().is_none(), "empty collector has no floor");
        t.push(3, 1.0);
        assert!(t.floor().is_none(), "underfull collector has no floor");
        t.push(7, 5.0);
        let f = t.floor().expect("full collector exposes its floor");
        assert_eq!((f.doc, f.score), (3, 1.0));
        // A better entry evicts the floor; the floor tracks the new worst.
        t.push(1, 9.0);
        let f = t.floor().unwrap();
        assert_eq!((f.doc, f.score), (7, 5.0));
        // Equal score, higher doc id: loses the tiebreak, floor unchanged.
        t.push(8, 5.0);
        let f = t.floor().unwrap();
        assert_eq!((f.doc, f.score), (7, 5.0));
        // k = 0 never has a floor (nothing is ever kept).
        let mut z = TopK::new(0);
        z.push(0, 1.0);
        assert!(z.floor().is_none());
    }

    #[test]
    fn bound_heap_pops_in_sorted_order() {
        // Ties included: pop order must match the sort it replaced
        // (bound descending, doc ascending) element for element.
        let cands: Vec<(f64, u32)> = (0..64u32).map(|i| (((i * 13) % 7) as f64, i)).collect();
        let mut reference = cands.clone();
        reference.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut heap = BoundHeap::from_candidates(cands);
        let mut popped = Vec::new();
        while let Some(p) = heap.pop() {
            popped.push(p);
        }
        assert_eq!(popped, reference);
        assert!(BoundHeap::from_candidates(Vec::new()).pop().is_none());
    }

    proptest::proptest! {
        // TopK must agree with the reference "sort everything, truncate
        // to k" on arbitrary score lists. Scores are drawn from a small
        // integer domain so exact ties (doc-id tiebreak) occur in nearly
        // every case; k sweeps the degenerate corners {0, 1, len, len+5}.
        #[test]
        fn equals_full_sort_then_truncate(
            raw in proptest::collection::vec(-6i32..7, 0..48),
        ) {
            let scores: Vec<(u32, f64)> = raw
                .iter()
                .enumerate()
                .map(|(doc, &s)| (doc as u32, s as f64))
                .collect();
            let mut reference = scores.clone();
            reference.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for k in [0, 1, scores.len(), scores.len() + 5] {
                let mut t = TopK::new(k);
                for &(d, s) in &scores {
                    t.push(d, s);
                }
                let got: Vec<(u32, f64)> =
                    t.into_sorted().iter().map(|s| (s.doc, s.score)).collect();
                let want: Vec<(u32, f64)> = reference.iter().take(k).copied().collect();
                proptest::prop_assert_eq!(got, want, "k={}", k);
            }
        }
    }
}
