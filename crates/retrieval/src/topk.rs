//! Deterministic bounded top-k selection.
//!
//! Retrieval results must be reproducible run to run: equal scores are
//! broken by ascending doc id, matching what a stable sort over the full
//! score list would produce. Floating-point scores are compared
//! totally via `f64::total_cmp` (scores are finite by construction —
//! the LM layer never emits NaN).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Document id.
    pub doc: u32,
    /// Retrieval score (higher is better).
    pub score: f64,
}

/// Heap entry ordered so the heap root is the *worst* kept result.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(Scored);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by "badness": lower score = greater entry. Ties:
        // higher doc id = greater entry (so it is evicted first).
        match other.0.score.total_cmp(&self.0.score) {
            Ordering::Equal => self.0.doc.cmp(&other.0.doc),
            o => o,
        }
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k collector.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl TopK {
    /// Collector that keeps the best `k` entries.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one scored document.
    pub fn push(&mut self, doc: u32, score: f64) {
        if self.k == 0 {
            return;
        }
        let entry = HeapEntry(Scored { doc, score });
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry < *worst {
                self.heap.push(entry);
                self.heap.pop();
            }
        }
    }

    /// Finish: results sorted by descending score, ties by ascending doc
    /// id.
    pub fn into_sorted(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for (d, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 2.0)] {
            t.push(d, s);
        }
        let out = t.into_sorted();
        let docs: Vec<u32> = out.iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![1, 3, 2]);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut t = TopK::new(2);
        for d in [5, 1, 9, 3] {
            t.push(d, 7.0);
        }
        let docs: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![1, 3]);
    }

    #[test]
    fn fewer_than_k() {
        let mut t = TopK::new(10);
        t.push(4, 1.0);
        t.push(2, 2.0);
        let docs: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![2, 4]);
    }

    #[test]
    fn zero_k() {
        let mut t = TopK::new(0);
        t.push(0, 1.0);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn matches_full_sort_reference() {
        let scores: Vec<(u32, f64)> = (0..100).map(|i| (i, ((i * 37) % 11) as f64)).collect();
        let mut t = TopK::new(10);
        for &(d, s) in &scores {
            t.push(d, s);
        }
        let fast: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        let mut reference = scores;
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let slow: Vec<u32> = reference.iter().take(10).map(|&(d, _)| d).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn negative_scores_ordered_correctly() {
        let mut t = TopK::new(2);
        t.push(0, -5.0);
        t.push(1, -1.0);
        t.push(2, -3.0);
        let docs: Vec<u32> = t.into_sorted().iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![1, 2]);
    }
}
