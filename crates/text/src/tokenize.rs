//! Position-aware word tokenization.
//!
//! Tokens are maximal runs of alphanumeric characters in *normalized* text
//! (see [`crate::normalize()`]). Each token carries its word `position`
//! (0-based index in the token sequence), which the positional inverted
//! index in `querygraph-retrieval` uses for exact-phrase matching — the
//! `#1(...)` operator of the INDRI query language the paper relies on
//! (§2.2).

use crate::normalize::normalize;

/// One token of a tokenized text: the word itself plus its 0-based word
/// position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized word text (lowercase alphanumeric).
    pub text: String,
    /// 0-based position in the token sequence.
    pub position: u32,
}

/// Tokenize `input` (normalizing first) into plain words.
///
/// ```
/// use querygraph_text::tokenize::tokenize;
/// assert_eq!(tokenize("Gondola in Venice"), vec!["gondola", "in", "venice"]);
/// assert!(tokenize("").is_empty());
/// ```
pub fn tokenize(input: &str) -> Vec<String> {
    normalize(input)
        .split(' ')
        .filter(|w| !w.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Tokenize `input` (normalizing first) into [`Token`]s with word
/// positions.
///
/// ```
/// use querygraph_text::tokenize::tokenize_positions;
/// let toks = tokenize_positions("bridge of sighs");
/// assert_eq!(toks[2].text, "sighs");
/// assert_eq!(toks[2].position, 2);
/// ```
pub fn tokenize_positions(input: &str) -> Vec<Token> {
    normalize(input)
        .split(' ')
        .filter(|w| !w.is_empty())
        .enumerate()
        .map(|(i, w)| Token {
            text: w.to_owned(),
            position: i as u32,
        })
        .collect()
}

/// Count tokens without allocating the token vector. Equivalent to
/// `tokenize(input).len()` but cheaper; used for document-length
/// bookkeeping during indexing.
pub fn token_count(input: &str) -> usize {
    normalize(input)
        .split(' ')
        .filter(|w| !w.is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(
            tokenize("visitor-attractions, in\tVenice"),
            vec!["visitor", "attractions", "in", "venice"]
        );
    }

    #[test]
    fn positions_are_sequential() {
        let toks = tokenize_positions("a b c d");
        let positions: Vec<u32> = toks.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize_positions("").is_empty());
        assert!(tokenize_positions("—!…").is_empty());
    }

    #[test]
    fn token_count_matches_tokenize() {
        for s in ["", "one", "Summer field in Belgium (Hamois)", "a,b,,c"] {
            assert_eq!(token_count(s), tokenize(s).len(), "input: {s:?}");
        }
    }

    #[test]
    fn tokens_are_normalized() {
        let toks = tokenize("CENTAUREA Cyanus");
        assert_eq!(toks, vec!["centaurea", "cyanus"]);
    }
}
