//! Sliding n-gram windows over token slices.
//!
//! The entity linker (§2.1 of the paper) searches for the *largest
//! substring* of the input that matches an article title. It does so by
//! scanning windows of decreasing width over the token stream;
//! [`NgramWindows`] provides those windows without allocating.

/// Iterator over all contiguous windows of exactly `n` tokens.
///
/// Yields `(start_index, &[T])` pairs so callers can map a match back to
/// its location in the original token stream.
///
/// ```
/// use querygraph_text::ngram::NgramWindows;
/// let toks = ["grand", "canal", "venice"];
/// let windows: Vec<_> = NgramWindows::new(&toks, 2).collect();
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows[0], (0, &toks[0..2]));
/// assert_eq!(windows[1], (1, &toks[1..3]));
/// ```
pub struct NgramWindows<'a, T> {
    tokens: &'a [T],
    n: usize,
    start: usize,
}

impl<'a, T> NgramWindows<'a, T> {
    /// Create a window iterator of width `n` over `tokens`. A width of 0
    /// or a width longer than the slice yields an empty iterator.
    pub fn new(tokens: &'a [T], n: usize) -> Self {
        NgramWindows {
            tokens,
            n,
            start: 0,
        }
    }
}

impl<'a, T> Iterator for NgramWindows<'a, T> {
    type Item = (usize, &'a [T]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.n == 0 || self.start + self.n > self.tokens.len() {
            return None;
        }
        let item = (self.start, &self.tokens[self.start..self.start + self.n]);
        self.start += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.n == 0 || self.start + self.n > self.tokens.len() {
            0
        } else {
            self.tokens.len() - self.n - self.start + 1
        };
        (remaining, Some(remaining))
    }
}

impl<'a, T> ExactSizeIterator for NgramWindows<'a, T> {}

/// Join a window of words into a single space-separated phrase.
///
/// ```
/// use querygraph_text::ngram::join_phrase;
/// assert_eq!(join_phrase(&["bridge".into(), "of".into(), "sighs".into()]), "bridge of sighs");
/// ```
pub fn join_phrase(words: &[String]) -> String {
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_width_window_is_whole_slice() {
        let toks = ["a", "b", "c"];
        let ws: Vec<_> = NgramWindows::new(&toks, 3).collect();
        assert_eq!(ws, vec![(0, &toks[..])]);
    }

    #[test]
    fn zero_width_yields_nothing() {
        let toks = ["a", "b"];
        assert_eq!(NgramWindows::new(&toks, 0).count(), 0);
    }

    #[test]
    fn too_wide_yields_nothing() {
        let toks = ["a"];
        assert_eq!(NgramWindows::new(&toks, 2).count(), 0);
    }

    #[test]
    fn window_count_is_len_minus_n_plus_one() {
        let toks: Vec<u32> = (0..10).collect();
        for n in 1..=10 {
            assert_eq!(NgramWindows::new(&toks, n).count(), 10 - n + 1);
        }
    }

    #[test]
    fn exact_size_hint_tracks_progress() {
        let toks = ["a", "b", "c", "d"];
        let mut it = NgramWindows::new(&toks, 2);
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        it.next();
        it.next();
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn empty_slice() {
        let toks: [&str; 0] = [];
        assert_eq!(NgramWindows::new(&toks, 1).count(), 0);
    }
}
