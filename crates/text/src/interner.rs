//! String interning: a bidirectional map between terms and dense `u32`
//! ids.
//!
//! The inverted index, the title dictionary and the synthetic vocabulary
//! all need to treat words as small integers. [`Interner`] assigns ids in
//! insertion order, so an interner built from a deterministic input stream
//! is itself deterministic — a property the reproduction harness relies on
//! (DESIGN.md §8).

use std::collections::HashMap;

/// Dense id of an interned term. Ids are assigned consecutively from 0 in
/// first-seen order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Insertion-ordered string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            map: HashMap::with_capacity(cap),
            terms: Vec::with_capacity(cap),
        }
    }

    /// Intern `term`, returning its id. Existing terms return their
    /// original id; new terms get the next consecutive id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_owned());
        self.map.insert(term.to_owned(), id);
        id
    }

    /// Look up a term without inserting.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// Resolve an id back to its term. Panics if the id came from another
    /// interner and is out of range.
    pub fn resolve(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(TermId, &str)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("venice");
        let b = i.intern("venice");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), TermId(0));
        assert_eq!(i.intern("b"), TermId(1));
        assert_eq!(i.intern("a"), TermId(0));
        assert_eq!(i.intern("c"), TermId(2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let words = ["gondola", "canal", "bridge"];
        let ids: Vec<TermId> = words.iter().map(|w| i.intern(w)).collect();
        for (w, id) in words.iter().zip(ids) {
            assert_eq!(i.resolve(id), *w);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        i.intern("present");
        assert_eq!(i.get("present"), Some(TermId(0)));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = Interner::new();
        for w in ["z", "y", "x"] {
            i.intern(w);
        }
        let collected: Vec<&str> = i.iter().map(|(_, t)| t).collect();
        assert_eq!(collected, vec!["z", "y", "x"]);
    }

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            let mut i = Interner::new();
            for w in ["alpha", "beta", "alpha", "gamma"] {
                i.intern(w);
            }
            i.iter()
                .map(|(id, t)| (id.0, t.to_owned()))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
