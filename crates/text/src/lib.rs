//! # querygraph-text
//!
//! Text primitives shared by every layer of the `querygraph` workspace:
//! normalization, position-aware tokenization, n-gram windows, a string
//! interner used as the retrieval term dictionary, and a small English
//! stopword list.
//!
//! The paper's pipeline (Guisado-Gámez & Prat-Pérez, 2015) matches
//! Wikipedia article *titles* against free text (§2.1 "Linking with
//! Wikipedia") and indexes document text for the INDRI-style engine (§2.2).
//! Both sides must agree on one canonical text form, which this crate
//! defines: see [`normalize::normalize`].
//!
//! ## Quick example
//!
//! ```
//! use querygraph_text::{normalize, tokenize};
//!
//! let norm = normalize::normalize("Grand  Canal (Venice)!");
//! assert_eq!(norm, "grand canal venice");
//!
//! let toks = tokenize::tokenize_positions("gondola in Venice");
//! assert_eq!(toks.len(), 3);
//! assert_eq!(toks[1].text, "in");
//! assert_eq!(toks[2].position, 2);
//! ```

pub mod interner;
pub mod ngram;
pub mod normalize;
pub mod stopwords;
pub mod tokenize;

pub use interner::{Interner, TermId};
pub use ngram::NgramWindows;
pub use normalize::{normalize, normalize_into};
pub use stopwords::is_stopword;
pub use tokenize::{tokenize, tokenize_positions, Token};
