//! Canonical text normalization.
//!
//! Every string that participates in matching — article titles, query
//! keywords, document text — is folded through [`normalize`] before being
//! compared or indexed. The transform is deliberately simple and total
//! (never fails, never panics):
//!
//! 1. Unicode characters from the Latin-1/Latin-Extended accent ranges are
//!    folded to their ASCII base letter (`é` → `e`, `ß` → `ss`). Wikipedia
//!    titles are full of diacritics ("Bouches-du-Rhône") while query
//!    keyboards often produce plain ASCII; folding both sides closes that
//!    gap.
//! 2. Everything is lowercased.
//! 3. Any non-alphanumeric character becomes a single space; runs of
//!    whitespace collapse; leading/trailing whitespace is trimmed.
//!
//! The result is a space-separated sequence of lowercase alphanumeric
//! words, which is exactly the token stream [`crate::tokenize()`]
//! produces.

/// Fold one character to zero or more ASCII characters.
///
/// Covers the accented Latin ranges that occur in Wikipedia titles. Any
/// other non-ASCII alphanumeric character is kept as-is (the tokenizer
/// treats it as a word character), so e.g. CJK text survives untouched.
fn fold_char(c: char, out: &mut String) {
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' => out.push('a'),
        'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' | 'Ā' | 'Ă' | 'Ą' => out.push('a'),
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => out.push('e'),
        'È' | 'É' | 'Ê' | 'Ë' | 'Ē' | 'Ĕ' | 'Ė' | 'Ę' | 'Ě' => out.push('e'),
        'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' => out.push('i'),
        'Ì' | 'Í' | 'Î' | 'Ï' | 'Ĩ' | 'Ī' | 'Ĭ' | 'Į' | 'İ' => out.push('i'),
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ŏ' | 'ő' => out.push('o'),
        'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' | 'Ō' | 'Ŏ' | 'Ő' => out.push('o'),
        'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' => out.push('u'),
        'Ù' | 'Ú' | 'Û' | 'Ü' | 'Ũ' | 'Ū' | 'Ŭ' | 'Ů' | 'Ű' | 'Ų' => out.push('u'),
        'ý' | 'ÿ' | 'Ý' | 'Ÿ' => out.push('y'),
        'ñ' | 'ń' | 'ņ' | 'ň' | 'Ñ' | 'Ń' | 'Ņ' | 'Ň' => out.push('n'),
        'ç' | 'ć' | 'ĉ' | 'č' | 'Ç' | 'Ć' | 'Ĉ' | 'Č' => out.push('c'),
        'š' | 'ś' | 'ş' | 'Š' | 'Ś' | 'Ş' => out.push('s'),
        'ž' | 'ź' | 'ż' | 'Ž' | 'Ź' | 'Ż' => out.push('z'),
        'ł' | 'Ł' => out.push('l'),
        'đ' | 'Đ' | 'ð' | 'Ð' => out.push('d'),
        'ğ' | 'Ğ' | 'ĝ' | 'Ĝ' => out.push('g'),
        'ť' | 'Ť' | 'ţ' | 'Ţ' => out.push('t'),
        'ř' | 'Ř' | 'ŕ' | 'Ŕ' => out.push('r'),
        'ß' => out.push_str("ss"),
        'æ' | 'Æ' => out.push_str("ae"),
        'œ' | 'Œ' => out.push_str("oe"),
        'þ' | 'Þ' => out.push_str("th"),
        _ => out.push(c),
    }
}

/// Normalize `input` into a fresh `String`. See the module docs for the
/// exact transform.
///
/// ```
/// use querygraph_text::normalize::normalize;
/// assert_eq!(normalize("Bouches-du-Rhône"), "bouches du rhone");
/// assert_eq!(normalize("  Ponte  dei Sospiri. "), "ponte dei sospiri");
/// assert_eq!(normalize(""), "");
/// ```
pub fn normalize(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    normalize_into(input, &mut out);
    out
}

/// Normalize `input`, appending to `out` (which is cleared first). The
/// workhorse-buffer variant for hot loops: avoids one allocation per call.
pub fn normalize_into(input: &str, out: &mut String) {
    out.clear();
    let mut folded = String::with_capacity(input.len());
    for c in input.chars() {
        fold_char(c, &mut folded);
    }
    let mut pending_space = false;
    for c in folded.chars() {
        if c.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lc in c.to_lowercase() {
                out.push(lc);
            }
        } else {
            pending_space = true;
        }
    }
}

/// True when two strings normalize to the same canonical form.
///
/// ```
/// use querygraph_text::normalize::normalized_eq;
/// assert!(normalized_eq("Grand Canal", "grand-canal"));
/// assert!(!normalized_eq("Grand Canal", "grand canals"));
/// ```
pub fn normalized_eq(a: &str, b: &str) -> bool {
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases() {
        assert_eq!(normalize("VENICE"), "venice");
    }

    #[test]
    fn strips_punctuation_to_single_spaces() {
        assert_eq!(normalize("gondola, in; venice!"), "gondola in venice");
    }

    #[test]
    fn collapses_whitespace_runs() {
        assert_eq!(normalize("a \t\n  b"), "a b");
    }

    #[test]
    fn trims_edges() {
        assert_eq!(normalize("  venice  "), "venice");
        assert_eq!(normalize("...venice..."), "venice");
    }

    #[test]
    fn folds_accents() {
        assert_eq!(normalize("Palazzo Bembó"), "palazzo bembo");
        assert_eq!(normalize("Rhône"), "rhone");
        assert_eq!(normalize("Größe"), "grosse");
        assert_eq!(normalize("Œuvre"), "oeuvre");
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(normalize("1712 establishments"), "1712 establishments");
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!! --- ???"), "");
    }

    #[test]
    fn parenthetical_titles() {
        // Wikipedia disambiguation suffixes become plain words.
        assert_eq!(normalize("Grand Canal (Venice)"), "grand canal venice");
    }

    #[test]
    fn normalize_into_reuses_buffer() {
        let mut buf = String::new();
        normalize_into("First Title", &mut buf);
        assert_eq!(buf, "first title");
        normalize_into("B", &mut buf);
        assert_eq!(buf, "b");
    }

    #[test]
    fn normalized_eq_is_reflexive_on_fixture_titles() {
        for t in ["Bridge of Sighs", "Cannaregio", "Venetian Gothic buildings"] {
            assert!(normalized_eq(t, t));
        }
    }

    proptest::proptest! {
        /// normalize is idempotent and produces only lowercase
        /// alphanumerics + single spaces for any input.
        #[test]
        fn idempotent_and_canonical(input in ".{0,60}") {
            let once = normalize(&input);
            proptest::prop_assert_eq!(&normalize(&once), &once);
            proptest::prop_assert!(!once.starts_with(' '));
            proptest::prop_assert!(!once.ends_with(' '));
            proptest::prop_assert!(!once.contains("  "));
            for c in once.chars() {
                // ASCII output is strictly lowercase alphanumerics and
                // single spaces. Non-ASCII alphanumerics pass through;
                // a few (e.g. '𝐀') have no lowercase mapping at all, so
                // only idempotence is guaranteed for them.
                if c.is_ascii() {
                    proptest::prop_assert!(
                        c == ' ' || c.is_ascii_lowercase() || c.is_ascii_digit(),
                        "unexpected ASCII char {:?} in {:?}", c, once
                    );
                } else {
                    proptest::prop_assert!(
                        c.is_alphanumeric(),
                        "unexpected char {:?} in {:?}", c, once
                    );
                }
            }
        }
    }

    #[test]
    fn idempotent() {
        for s in ["Grand Canal (Venice)", "Bouches-du-Rhône", "  a  b  "] {
            let once = normalize(s);
            assert_eq!(normalize(&once), once, "normalize must be idempotent");
        }
    }
}
