//! A compact English stopword list.
//!
//! The entity linker skips mentions that consist *only* of stopwords
//! ("in", "the") — matching such words against article titles would link
//! every preposition to a disambiguation page. The list is intentionally
//! short: the paper's linking strategy is title-driven, so aggressive
//! stopword removal would destroy multi-word titles like "Bridge of
//! Sighs" (the "of" must survive inside phrases; only *whole* mentions of
//! stopwords are dropped).

/// Sorted list of stopwords; `is_stopword` binary-searches it.
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for",
    "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his",
    "how", "i", "if", "in", "into", "is", "it", "its", "itself", "just", "me", "more", "most",
    "my", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other", "our",
    "ours", "out", "over", "own", "same", "she", "should", "so", "some", "such", "than", "that",
    "the", "their", "theirs", "them", "then", "there", "these", "they", "this", "those", "through",
    "to", "too", "under", "until", "up", "very", "was", "we", "were", "what", "when", "where",
    "which", "while", "who", "whom", "why", "will", "with", "would", "you", "your", "yours",
];

/// True when `word` (already normalized/lowercase) is an English
/// stopword.
///
/// ```
/// use querygraph_text::stopwords::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("gondola"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// True when *every* word of the slice is a stopword (used to reject
/// stopword-only mentions). An empty slice counts as all-stopwords.
pub fn all_stopwords<S: AsRef<str>>(words: &[S]) -> bool {
    words.iter().all(|w| is_stopword(w.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduplicated() {
        // Binary search correctness depends on this invariant.
        for pair in STOPWORDS.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{:?} must precede {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "of", "in", "and", "is"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["venice", "gondola", "anthrax", "graffiti"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn all_stopwords_requires_every_word() {
        assert!(all_stopwords(&["in", "the"]));
        assert!(!all_stopwords(&["in", "venice"]));
        assert!(all_stopwords::<&str>(&[]));
    }
}
