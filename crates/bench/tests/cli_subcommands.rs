//! Regression tests for the `qgx` subcommand CLI surface.
//!
//! The PR that introduced `qgx serve | replay | client` kept the old
//! bare-flag spelling as a deprecated alias — these tests pin that
//! contract: one warning on stderr, byte-identical stdout, and typo'd
//! flags still rejected per subcommand.

use std::io::Write;
use std::process::{Command, Stdio};

const QGX: &str = env!("CARGO_BIN_EXE_qgx");

/// Run qgx with `args`, feeding `stdin`, returning (status, stdout,
/// stderr).
fn run(args: &[&str], stdin: &str) -> (std::process::ExitStatus, String, String) {
    let mut child = Command::new(QGX)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qgx");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let output = child.wait_with_output().expect("qgx runs");
    (
        output.status,
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn bare_flags_warn_once_and_match_replay_byte_for_byte() {
    let stdin = "xyzzy nothing links\n";
    let (old_status, old_out, old_err) = run(&["--tiny", "--json"], stdin);
    let (new_status, new_out, new_err) = run(&["replay", "--tiny", "--json"], stdin);
    assert!(old_status.success(), "legacy spelling must keep working");
    assert!(new_status.success());
    // Same served output, byte for byte — scripts that parse stdout
    // never notice the deprecation.
    assert_eq!(old_out, new_out);
    // Exactly one deprecation warning, on stderr only, and only for
    // the legacy spelling.
    assert_eq!(
        old_err.matches("deprecated").count(),
        1,
        "stderr: {old_err}"
    );
    assert_eq!(
        new_err.matches("deprecated").count(),
        0,
        "stderr: {new_err}"
    );
    assert!(!old_out.contains("deprecated"), "stdout must stay clean");
}

#[test]
fn unknown_subcommand_is_rejected() {
    let (status, _, stderr) = run(&["frobnicate"], "");
    assert_eq!(status.code(), Some(2));
    assert!(stderr.contains("unknown subcommand"), "stderr: {stderr}");
}

#[test]
fn flags_are_rejected_per_subcommand() {
    // `--json` belongs to replay; serve must refuse it instead of
    // silently ignoring it.
    let (status, _, stderr) = run(&["serve", "--json"], "");
    assert_eq!(status.code(), Some(2));
    assert!(stderr.contains("unknown flag --json"), "stderr: {stderr}");
    // And the legacy alias still rejects genuine typos.
    let (status, _, stderr) = run(&["--jsno"], "");
    assert_eq!(status.code(), Some(2));
    assert!(stderr.contains("unknown flag --jsno"), "stderr: {stderr}");
}

#[test]
fn replay_deadline_flag_reports_typed_timeouts() {
    // `--deadline-ms 0` expires immediately: every query is refused
    // as a typed timeout without killing the loop.
    let (status, stdout, _) = run(
        &["replay", "--tiny", "--json", "--deadline-ms", "0"],
        "anything\n",
    );
    assert!(status.success());
    assert!(stdout.contains("\"code\":\"timeout\""), "stdout: {stdout}");
}
