//! Determinism properties of the open-loop load generator.
//!
//! `qgx bench --seed` promises a reproducible experiment: the same
//! seed must yield the same Poisson arrival schedule and the same
//! Zipfian query sequence for any ladder configuration, so a
//! regression hunt can replay the exact workload that showed the
//! regression. These properties pin that contract over the whole
//! parameter space rather than one hand-picked configuration.

use querygraph_bench::load_plan;

proptest::proptest! {
    /// Same seed → identical plan; the plan is well-formed (sorted
    /// arrivals inside the step horizon, query indices inside the
    /// pool); and the query mix is a separate stream from the arrival
    /// schedule (changing `zipf` must not move a single arrival).
    #[test]
    fn load_plan_is_deterministic_and_well_formed(
        rps in 1.0f64..500.0,
        duration_s in 0.05f64..1.5,
        pool in 1usize..50,
        zipf in 0.0f64..1.5,
        seed in 0u64..1_000_000,
    ) {
        let plan = load_plan(rps, duration_s, pool, zipf, seed);
        let replay = load_plan(rps, duration_s, pool, zipf, seed);
        proptest::prop_assert_eq!(&plan, &replay, "same seed must replay exactly");

        let horizon_us = (duration_s * 1e6) as u64;
        let mut last = 0u64;
        for &(arrival_us, query) in &plan {
            proptest::prop_assert!(arrival_us >= last, "arrivals must be sorted");
            proptest::prop_assert!(arrival_us < horizon_us, "arrivals inside the step");
            proptest::prop_assert!(query < pool, "query index inside the pool");
            last = arrival_us;
        }

        // The query mix draws from its own seeded stream: a different
        // Zipf exponent re-weights *which* queries arrive but leaves
        // *when* they arrive untouched.
        let reweighted = load_plan(rps, duration_s, pool, zipf + 0.25, seed);
        proptest::prop_assert_eq!(plan.len(), reweighted.len());
        for (&(t_a, _), &(t_b, _)) in plan.iter().zip(&reweighted) {
            proptest::prop_assert_eq!(t_a, t_b, "zipf change moved an arrival");
        }

        // A different seed almost surely moves the schedule. With at
        // least a handful of arrivals the chance of a collision is
        // negligible; tiny plans may legitimately tie, so only assert
        // when there is enough entropy to make a tie a real bug.
        if plan.len() >= 8 {
            let other = load_plan(rps, duration_s, pool, zipf, seed ^ 0xDEAD_BEEF);
            let times = |p: &[(u64, usize)]| p.iter().map(|&(t, _)| t).collect::<Vec<_>>();
            proptest::prop_assert!(times(&plan) != times(&other), "seed had no effect");
        }
    }
}
