//! Process-level tests for the streaming ingest path (ISSUE 9 /
//! DESIGN.md §14): `qgx dump` → `qgx ingest` → `qgx compact` →
//! `qgx serve/replay --segstore`.
//!
//! The headline contracts:
//!
//! * a corpus ingested **incrementally** (two dump slices, small
//!   batches) and then compacted replays byte-identically to a
//!   from-scratch in-memory build — in process and across a
//!   `--shard-procs` fleet;
//! * a live `qgx serve --segstore` hot-swaps onto a newly published
//!   generation between queries — answers keep flowing before, during,
//!   and after the swap, and the server drains cleanly.

#[cfg(unix)]
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const QGX: &str = env!("CARGO_BIN_EXE_qgx");

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qgx-segstore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run qgx to completion with `args`, returning (status, stdout, stderr).
fn run(args: &[&str]) -> (std::process::ExitStatus, String, String) {
    let output = Command::new(QGX)
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("qgx runs");
    (
        output.status,
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run_ok(args: &[&str]) -> (String, String) {
    let (status, stdout, stderr) = run(args);
    assert!(status.success(), "qgx {args:?} failed: {stderr}");
    (stdout, stderr)
}

/// Dump the tiny tier in two slices and ingest both into `store`,
/// 16 docs per segment. Returns the slice boundary.
fn ingest_tiny_in_two_slices(dir: &std::path::Path, store: &str) -> usize {
    let dump_a = dir.join("dump-a.xml");
    let dump_b = dir.join("dump-b.xml");
    let a = dump_a.to_str().expect("utf-8 path");
    let b = dump_b.to_str().expect("utf-8 path");
    run_ok(&["dump", "--tiny", "--out", a, "--docs", "40"]);
    run_ok(&["dump", "--tiny", "--out", b, "--skip", "40"]);
    run_ok(&[
        "ingest",
        "--tiny",
        "--dump",
        a,
        "--segstore",
        store,
        "--batch-docs",
        "16",
    ]);
    run_ok(&[
        "ingest",
        "--tiny",
        "--dump",
        b,
        "--segstore",
        store,
        "--batch-docs",
        "16",
    ]);
    40
}

#[test]
fn incremental_ingest_then_compaction_replays_byte_identically() {
    let dir = scratch("identity");
    let store = dir.join("store");
    let store = store.to_str().expect("utf-8 path");
    ingest_tiny_in_two_slices(&dir, store);
    let (_, stderr) = run_ok(&["compact", "--tiny", "--segstore", store, "--shards", "4"]);
    assert!(
        stderr.contains("→ 4 segment(s)"),
        "compaction must report its merge: {stderr}"
    );

    let workload = [
        "replay",
        "--tiny",
        "--seed-queries",
        "--json",
        "--top-k",
        "5",
    ];
    let (rebuilt, _) = run_ok(&workload);
    assert!(rebuilt.contains("\"hits\""), "workload must retrieve");

    let mut via_store = workload.to_vec();
    via_store.extend(["--segstore", store]);
    let (incremental, stderr) = run_ok(&via_store);
    assert_eq!(
        incremental, rebuilt,
        "segstore replay must be byte-identical to a from-scratch build: {stderr}"
    );

    // The same store behind a supervised fleet: one `qgx shard
    // --segstore --seq` child per compacted segment.
    let mut via_fleet = via_store.clone();
    via_fleet.extend(["--shard-procs", "4"]);
    let (fleet, stderr) = run_ok(&via_fleet);
    assert_eq!(
        fleet, rebuilt,
        "segstore shard processes must be byte-identical too: {stderr}"
    );
    for slot in 0..4 {
        assert!(
            stderr.contains(&format!("(slot {slot}) pid")),
            "missing boot line for fleet slot {slot}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segstore_flag_hygiene() {
    // `shard --segstore` needs the segment's sequence number.
    let (status, _, stderr) = run(&[
        "shard",
        "--segstore",
        "/nonexistent",
        "--shard",
        "0",
        "--fingerprint",
        "deadbeefdeadbeef",
    ]);
    assert_eq!(status.code(), Some(2));
    assert!(stderr.contains("requires --seq"), "stderr: {stderr}");

    // `--segstore` is its own index source.
    let (status, _, stderr) = run(&[
        "replay",
        "--tiny",
        "--segstore",
        "/nonexistent",
        "--index-cache",
        "/tmp/x",
        "--seed-queries",
    ]);
    assert_eq!(status.code(), Some(2));
    assert!(stderr.contains("its own index source"), "stderr: {stderr}");

    // Serving an empty store is a typed refusal, not a panic.
    let dir = scratch("empty");
    let store = dir.to_str().expect("utf-8 path");
    let (status, _, stderr) = run(&["replay", "--tiny", "--segstore", store, "--seed-queries"]);
    assert_eq!(status.code(), Some(1));
    assert!(stderr.contains("never published"), "stderr: {stderr}");

    // A fleet width that disagrees with the live segment count is
    // refused with the fix spelled out.
    let ingested = scratch("width");
    let store = ingested.join("store");
    let store = store.to_str().expect("utf-8 path");
    ingest_tiny_in_two_slices(&ingested, store);
    let (status, _, stderr) = run(&[
        "replay",
        "--tiny",
        "--segstore",
        store,
        "--seed-queries",
        "--shard-procs",
        "2",
    ]);
    assert_eq!(status.code(), Some(2));
    assert!(
        stderr.contains("qgx compact --shards 2"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ingested);
}

#[cfg(unix)]
#[test]
fn serve_hot_swaps_onto_a_new_generation_without_dropping_requests() {
    let dir = scratch("hotswap");
    let store_path = dir.join("store");
    let store = store_path.to_str().expect("utf-8 path");
    let dump_a = dir.join("dump-a.xml");
    let dump_b = dir.join("dump-b.xml");
    let a = dump_a.to_str().expect("utf-8 path");
    let b = dump_b.to_str().expect("utf-8 path");
    run_ok(&["dump", "--tiny", "--out", a, "--docs", "40"]);
    run_ok(&["dump", "--tiny", "--out", b, "--skip", "40"]);
    run_ok(&[
        "ingest",
        "--tiny",
        "--dump",
        a,
        "--segstore",
        store,
        "--batch-docs",
        "16",
    ]);

    let mut serve = Command::new(QGX)
        .args([
            "serve",
            "--tiny",
            "--segstore",
            store,
            "--listen",
            "127.0.0.1:0",
            "--top-k",
            "5",
            "--deadline-ms",
            "10000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qgx serve");
    let mut reader = BufReader::new(serve.stderr.take().expect("piped stderr"));
    let mut http_addr = None;
    for _ in 0..64 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read serve stderr") == 0 {
            break;
        }
        if let Some(rest) = line.strip_prefix("# qgx: listening on ") {
            http_addr = rest.split_whitespace().next().map(str::to_string);
            break;
        }
    }
    let http_addr = http_addr.expect("serve announced its HTTP address");

    // The boot generation answers.
    let (stdout, _) = run_ok(&[
        "client",
        "--connect",
        &http_addr,
        "--seed-queries",
        "--tiny",
        "--top-k",
        "5",
        "--timeout-ms",
        "15000",
    ]);
    assert!(stdout.contains("\"hits\""), "no retrieval served: {stdout}");

    // Publish the rest of the corpus and compact — the watcher must
    // hot-swap the serving engine onto the new generation.
    run_ok(&[
        "ingest",
        "--tiny",
        "--dump",
        b,
        "--segstore",
        store,
        "--batch-docs",
        "16",
        "--compact",
        "2",
    ]);
    let mut swapped = false;
    for _ in 0..64 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read serve stderr") == 0 {
            break;
        }
        if line.contains("serving generation") {
            assert!(
                line.contains("96 docs"),
                "the swap must land on the full corpus: {line}"
            );
            swapped = true;
            break;
        }
    }
    assert!(swapped, "the watcher never swapped onto the new generation");

    // The swapped generation answers the same endpoint — no restart,
    // no dropped requests, and now over the full document set: the
    // answers are byte-identical to a from-scratch build of the whole
    // tier served fresh.
    let workload = [
        "client",
        "--connect",
        &http_addr,
        "--seed-queries",
        "--tiny",
        "--top-k",
        "5",
        "--timeout-ms",
        "15000",
    ];
    let (after, _) = run_ok(&workload);
    assert!(after.contains("\"hits\""), "no retrieval served: {after}");
    assert!(
        !after.contains("artifact_shard"),
        "swap broke the engine: {after}"
    );

    let term = Command::new("kill")
        .args(["-TERM", &serve.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = serve.wait().expect("serve exits");
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("drain serve stderr");
    assert!(status.success(), "serve must exit 0 after SIGTERM: {rest}");
    let _ = std::fs::remove_dir_all(&dir);
}
