//! Process-level tests for `qgx shard` and the `--shard-procs N`
//! supervisor.
//!
//! The headline contract (ISSUE 8 / DESIGN.md §13): a fleet of shard
//! *processes* answers byte-identically to the in-process sharded
//! engine over the same segmented artifact, and a shard that dies
//! mid-serving surfaces as a typed `artifact_shard` error naming its
//! endpoint — never a hang, never a panic.

#[cfg(unix)]
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const QGX: &str = env!("CARGO_BIN_EXE_qgx");

/// A per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qgx-shard-procs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run qgx to completion with `args`, returning (status, stdout, stderr).
fn run(args: &[&str]) -> (std::process::ExitStatus, String, String) {
    let output = Command::new(QGX)
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("qgx runs");
    (
        output.status,
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Build the tiny tier's 2-shard segmented artifact into `cache` (one
/// in-process replay run; the cache module persists segments + manifest).
fn build_sharded_cache(cache: &str, shards: &str) -> (String, String) {
    let (status, stdout, stderr) = run(&[
        "replay",
        "--tiny",
        "--shards",
        shards,
        "--index-cache",
        cache,
        "--seed-queries",
        "--json",
        "--top-k",
        "5",
    ]);
    assert!(status.success(), "cache-building replay failed: {stderr}");
    (stdout, stderr)
}

#[test]
fn shard_procs_replay_is_byte_identical_to_in_process() {
    let dir = scratch("identity");
    let cache = dir.to_str().expect("utf-8 temp path");
    // Run 1 builds the segmented artifact and serves in process.
    let (in_process, _) = build_sharded_cache(cache, "3");
    // Run 2 serves the same workload across 3 supervised shard
    // processes loading those segments.
    let (status, remote, stderr) = run(&[
        "replay",
        "--tiny",
        "--shards",
        "3",
        "--index-cache",
        cache,
        "--shard-procs",
        "3",
        "--seed-queries",
        "--json",
        "--top-k",
        "5",
    ]);
    assert!(status.success(), "shard-procs replay failed: {stderr}");
    assert_eq!(
        in_process, remote,
        "shard processes must answer byte-identically to in-process sharding"
    );
    // The supervisor reported every child's boot and drain.
    for shard in 0..3 {
        assert!(
            stderr.contains(&format!("shard {shard} pid")),
            "missing boot line for shard {shard}: {stderr}"
        );
        assert!(
            stderr.contains(&format!("shard {shard} exited")),
            "missing drain line for shard {shard}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_child_refuses_a_wrong_fingerprint() {
    let dir = scratch("fingerprint");
    let cache = dir.to_str().expect("utf-8 temp path");
    build_sharded_cache(cache, "2");
    // Recover the artifact stem from the segment files themselves —
    // the child must die on a fingerprint mismatch before it can
    // answer for a segment it does not own.
    let stem = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .find_map(|name| Some(name.strip_suffix(".shard0.qgidx")?.to_string()))
        .expect("a shard0 segment exists");
    let (status, _, stderr) = run(&[
        "shard",
        "--dir",
        cache,
        "--stem",
        &stem,
        "--shard",
        "0",
        "--fingerprint",
        "deadbeefdeadbeef",
    ]);
    assert_eq!(status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("fingerprint mismatch"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_subcommand_requires_its_identity_flags() {
    let (status, _, stderr) = run(&["shard", "--dir", "/nonexistent"]);
    assert_eq!(status.code(), Some(2));
    assert!(stderr.contains("requires --stem"), "stderr: {stderr}");
    // And --shard-procs without the segmented layout is refused, not
    // silently served in process.
    let (status, _, stderr) = run(&["replay", "--tiny", "--shard-procs", "2", "--seed-queries"]);
    assert_eq!(status.code(), Some(2));
    assert!(
        stderr.contains("--shard-procs requires --index-cache"),
        "stderr: {stderr}"
    );
}

#[cfg(unix)]
#[test]
fn killing_one_shard_yields_typed_artifact_shard_errors() {
    let dir = scratch("kill");
    let cache = dir.to_str().expect("utf-8 temp path");
    build_sharded_cache(cache, "2");

    let mut serve = Command::new(QGX)
        .args([
            "serve",
            "--tiny",
            "--shards",
            "2",
            "--index-cache",
            cache,
            "--shard-procs",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--top-k",
            "5",
            "--deadline-ms",
            "10000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qgx serve");

    // Boot order on stderr: world line, one "shard {i} pid {p}
    // listening on {addr}" per child, then the HTTP listen line.
    let mut reader = BufReader::new(serve.stderr.take().expect("piped stderr"));
    let mut shard_pids: Vec<u32> = Vec::new();
    let mut http_addr = None;
    for _ in 0..64 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read serve stderr") == 0 {
            break;
        }
        if line.contains(" pid ") {
            let pid = line
                .split(" pid ")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next())
                .and_then(|t| t.parse().ok())
                .expect("pid parses");
            shard_pids.push(pid);
        }
        if let Some(rest) = line.strip_prefix("# qgx: listening on ") {
            http_addr = rest.split_whitespace().next().map(str::to_string);
            break;
        }
    }
    let http_addr = http_addr.expect("serve announced its HTTP address");
    assert_eq!(shard_pids.len(), 2, "two supervised children");

    // Baseline: the fleet answers (at least one seed query links and
    // retrieves through both shard processes).
    let (status, stdout, stderr) = run(&[
        "client",
        "--connect",
        &http_addr,
        "--seed-queries",
        "--tiny",
        "--top-k",
        "5",
        "--timeout-ms",
        "15000",
    ]);
    assert!(status.success(), "client failed: {stderr}");
    assert!(stdout.contains("\"hits\""), "no retrieval served: {stdout}");
    assert!(!stdout.contains("artifact_shard"), "healthy fleet errored");

    // Kill shard 1 outright, then replay the same workload: every
    // query that reaches retrieval must come back as a typed
    // `artifact_shard` error naming the dead endpoint — a clean HTTP
    // answer, not a hang or a worker panic.
    let killed = shard_pids[1];
    let kill = Command::new("kill")
        .args(["-9", &killed.to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success(), "kill -9 {killed} failed");
    std::thread::sleep(std::time::Duration::from_millis(100));
    let (status, stdout, stderr) = run(&[
        "client",
        "--connect",
        &http_addr,
        "--seed-queries",
        "--tiny",
        "--top-k",
        "5",
        "--timeout-ms",
        "15000",
    ]);
    assert!(status.success(), "client failed after kill: {stderr}");
    assert!(
        stdout.contains("\"code\":\"artifact_shard\""),
        "dead shard must surface as a typed artifact_shard error: {stdout}"
    );
    assert!(
        stdout.contains("index artifact shard 1"),
        "the error must name the dead shard: {stdout}"
    );

    // SIGTERM drains the supervisor: the surviving child exits, the
    // dead one is reaped, and serve itself exits 0.
    let term = Command::new("kill")
        .args(["-TERM", &serve.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = serve.wait().expect("serve exits");
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("drain serve stderr");
    assert!(status.success(), "serve must exit 0 after SIGTERM: {rest}");
    assert!(
        rest.contains("shard 0 exited") && rest.contains("shard 1 exited"),
        "supervisor must reap both children: {rest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
