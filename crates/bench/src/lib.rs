//! # querygraph-bench
//!
//! The reproduction harness: one `repro_*` binary per table and figure
//! of the paper (see DESIGN.md §3 for the index), plus Criterion
//! micro-benchmarks for the performance-critical kernels (`benches/`).
//!
//! All binaries run the same standard experiment
//! ([`standard_report`]) so their numbers are mutually consistent;
//! `repro_all` prints everything at once and is what EXPERIMENTS.md is
//! generated from.

pub mod bench_diff;

use querygraph_core::experiment::{Experiment, ExperimentConfig, Report};
use querygraph_core::pipeline::RunSummary;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The perf-trajectory record `repro_all` archives to `BENCH_seed.json`:
/// enough configuration to identify the workload, plus the pipeline's
/// per-stage timing summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Record-format version, bumped when fields change meaning.
    pub schema: u32,
    /// Queries in the analyzed workload.
    pub num_queries: usize,
    /// Topics in the synthetic Wikipedia.
    pub num_topics: usize,
    /// Synthetic-Wikipedia seed.
    pub wiki_seed: u64,
    /// Synthetic-corpus seed.
    pub corpus_seed: u64,
    /// Seconds to synthesize and index the world.
    pub build_seconds: f64,
    /// The pipeline run: mode, threads, wall clock, per-stage seconds.
    pub run: RunSummary,
}

impl BenchRecord {
    /// Assemble a record from a finished run.
    pub fn new(config: &ExperimentConfig, build_seconds: f64, run: RunSummary) -> BenchRecord {
        BenchRecord {
            // 2: RunSummary gained ground-truth evaluation counters.
            schema: 2,
            num_queries: config.corpus.num_queries,
            num_topics: config.wiki.num_topics,
            wiki_seed: config.wiki.seed,
            corpus_seed: config.corpus.seed,
            build_seconds,
            run,
        }
    }
}

/// Build the paper-scale experiment and analyze all 50 queries using
/// all available cores. Prints provenance (seeds, sizes, timing) to
/// stderr so stdout stays clean table output.
pub fn standard_report() -> Report {
    report_for(&ExperimentConfig::default_paper())
}

/// Build and run an experiment for an explicit configuration.
pub fn report_for(config: &ExperimentConfig) -> Report {
    report_and_summary(config).0
}

/// [`report_for`], also returning the pipeline's [`RunSummary`] and the
/// world-build seconds — the numbers `repro_all` archives to
/// `BENCH_seed.json`.
pub fn report_and_summary(config: &ExperimentConfig) -> (Report, RunSummary, f64) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    eprintln!(
        "# querygraph reproduction: wiki seed {:#x}, corpus seed {:#x}, {} queries, {} threads",
        config.wiki.seed, config.corpus.seed, config.corpus.num_queries, threads
    );
    let t0 = Instant::now();
    let experiment = Experiment::build(config);
    let build_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "# built: {} articles, {} categories, {} docs, {build_seconds:.2}s",
        experiment.wiki.kb.num_articles(),
        experiment.wiki.kb.num_categories(),
        experiment.corpus.corpus.len(),
    );
    let (report, summary) = experiment.run_parallel_with_summary(threads);
    eprint!("{}", indent_hash(&summary.render()));
    (report, summary, build_seconds)
}

fn indent_hash(s: &str) -> String {
    s.lines().map(|l| format!("# {l}\n")).collect()
}

/// The test-scale configuration (`--tiny` flag of the repro binaries):
/// the same miniature world the unit tests use.
pub fn tiny_config() -> ExperimentConfig {
    ExperimentConfig::tiny()
}

/// A smaller configuration for quick looks (`--quick` flag of the repro
/// binaries): 12 queries instead of 50.
pub fn quick_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default_paper();
    cfg.wiki.num_topics = 12;
    cfg.corpus.num_queries = 12;
    cfg.corpus.noise_docs = 300;
    cfg
}

/// Parse the common CLI of the repro binaries: `--quick` switches to
/// [`quick_config`], `--tiny` to [`tiny_config`].
pub fn config_from_args() -> ExperimentConfig {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--tiny") {
        tiny_config()
    } else if args.iter().any(|a| a == "--quick") {
        quick_config()
    } else {
        ExperimentConfig::default_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_consistent() {
        let cfg = quick_config();
        assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
    }
}
