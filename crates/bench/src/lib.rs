//! # querygraph-bench
//!
//! The reproduction harness: one `repro_*` binary per table and figure
//! of the paper (see DESIGN.md §3 for the index), plus Criterion
//! micro-benchmarks for the performance-critical kernels (`benches/`).
//!
//! All binaries run the same standard experiment
//! ([`standard_report`]) so their numbers are mutually consistent;
//! `repro_all` prints everything at once and is what EXPERIMENTS.md is
//! generated from. Common CLI (parsed by [`CliOptions::from_args`]):
//! `--tiny` / `--quick` / `--stress` select the workload tier and
//! `--index-cache <dir>` persists the inverted index across runs
//! (`core::cache`).

pub mod bench_diff;

use querygraph_core::cache::{BuildStats, WorldOptions};
use querygraph_core::experiment::{ExperimentConfig, Report};
use querygraph_core::pipeline::RunSummary;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// The perf-trajectory record `repro_all` archives to `BENCH_seed.json`
/// (or `BENCH_stress.json` for the stress tier): enough configuration
/// to identify the workload, the build-side breakdown, and the
/// pipeline's per-stage timing summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Record-format version, bumped when fields change meaning.
    pub schema: u32,
    /// Queries in the analyzed workload.
    pub num_queries: usize,
    /// Topics in the synthetic Wikipedia.
    pub num_topics: usize,
    /// Articles per topic (the stress dial).
    pub articles_per_topic: usize,
    /// Synthetic-Wikipedia seed.
    pub wiki_seed: u64,
    /// Synthetic-corpus seed.
    pub corpus_seed: u64,
    /// Total seconds to synthesize and index/load the world (kept for
    /// diffability against schema ≤ 2 records).
    pub build_seconds: f64,
    /// Seconds to synthesize the wiki + corpus.
    pub world_seconds: f64,
    /// Seconds to tokenize + index the corpus (0 when loaded).
    pub index_build_seconds: f64,
    /// Seconds to write the index artifact (0 unless written).
    pub index_write_seconds: f64,
    /// Seconds to load the index artifact (0 unless loaded).
    pub index_load_seconds: f64,
    /// `"built"` or `"loaded"`.
    pub index_source: String,
    /// Physical shards behind the engine (1 = monolithic).
    pub shard_count: usize,
    /// Per-shard segment load seconds, in shard order (empty unless a
    /// sharded artifact was loaded).
    pub shard_load_seconds: Vec<f64>,
    /// The pipeline run: mode, threads, wall clock, per-stage seconds.
    pub run: RunSummary,
}

impl BenchRecord {
    /// Assemble a record from a finished run.
    pub fn new(config: &ExperimentConfig, build: &BuildStats, run: RunSummary) -> BenchRecord {
        BenchRecord {
            // 9: open-loop load harness (a new "load" record kind
            //    carries the offered-RPS ladder with goodput and
            //    histogram-mode tail percentiles; serve records grew
            //    latency_mode saying whether exact samples or the
            //    log-bucketed histogram produced their numbers).
            // 8: streaming ingest (a new "ingest" record kind carries
            //    docs/sec, segment counts, compaction wall and swap
            //    pause; run/serve records are unchanged in shape).
            // 7: shard processes (serve records grew shard_procs — the
            //    count of supervised `qgx shard` children behind the
            //    engine, 0 = in-process).
            // 6: networked serving (serve records grew listen_addr,
            //    shed/timeout counters, per-code failures, and the
            //    per-connection latency distribution). Additive —
            //    repro_bench_diff reads records of any schema
            //    tolerantly.
            // 5: serving-side expansion cache (serve records grew
            //    cache_hits/cache_lookups/cache_hit_rate and the
            //    search_mode discriminator).
            // 4: shard-aware retrieval (shard_count, per-shard load
            //    seconds; serve records additionally grew
            //    qps_per_thread).
            // 3: build breakdown (world/index build/write/load seconds,
            //    index_source) for the on-disk index cache.
            // 2: RunSummary gained ground-truth evaluation counters.
            schema: 9,
            num_queries: config.corpus.num_queries,
            num_topics: config.wiki.num_topics,
            articles_per_topic: config.wiki.articles_per_topic,
            wiki_seed: config.wiki.seed,
            corpus_seed: config.corpus.seed,
            build_seconds: build.total_seconds(),
            world_seconds: build.world_seconds,
            index_build_seconds: build.index_build_seconds,
            index_write_seconds: build.index_write_seconds,
            index_load_seconds: build.index_load_seconds,
            index_source: build.index_source.name().to_string(),
            shard_count: build.shard_count,
            shard_load_seconds: build.shard_load_seconds.clone(),
            run,
        }
    }
}

/// Latency distribution of one serving run, in microseconds.
/// Percentiles use the nearest-rank method on the sorted samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median per-query latency.
    pub p50_us: f64,
    /// 90th-percentile latency.
    pub p90_us: f64,
    /// 99th-percentile latency (the tail a serving SLO watches).
    pub p99_us: f64,
    /// Worst observed latency.
    pub max_us: f64,
    /// Mean latency.
    pub mean_us: f64,
}

impl LatencySummary {
    /// Summarize raw per-query latencies (microseconds). Returns the
    /// all-zero summary for an empty sample set.
    pub fn of(samples: &[f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                p50_us: 0.0,
                p90_us: 0.0,
                p99_us: 0.0,
                max_us: 0.0,
                mean_us: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |p: f64| -> f64 {
            // Nearest rank: ceil(p/100 * n), 1-based.
            let n = sorted.len();
            let r = ((p / 100.0) * n as f64).ceil() as usize;
            sorted[r.clamp(1, n) - 1]
        };
        LatencySummary {
            p50_us: rank(50.0),
            p90_us: rank(90.0),
            p99_us: rank(99.0),
            max_us: sorted[sorted.len() - 1],
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Summarize a serving-side histogram snapshot (the
    /// constant-memory `latency_mode: "histogram"` path): percentiles
    /// are bucket upper bounds (≤ +9.1% of exact, never below); max
    /// and mean are exact.
    pub fn from_histogram(snap: &querygraph_core::HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            p50_us: snap.percentile_us(50.0),
            p90_us: snap.percentile_us(90.0),
            p99_us: snap.percentile_us(99.0),
            max_us: snap.max_us(),
            mean_us: snap.mean_us(),
        }
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "p50 {:.1}µs  p90 {:.1}µs  p99 {:.1}µs  max {:.1}µs  mean {:.1}µs",
            self.p50_us, self.p90_us, self.p99_us, self.max_us, self.mean_us
        )
    }
}

/// The serving half of a [`ServeRecord`]: what the `qgx` loop measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Expansion strategy served (`cycles`, `direct-links`, …).
    pub strategy: String,
    /// Queries answered successfully.
    pub queries_served: usize,
    /// Requests that returned a typed error (unlinkable text etc.).
    pub failures: usize,
    /// Workload repetitions (`--repeat`).
    pub repeat: usize,
    /// Documents retrieved per query (0 = expansion only).
    pub top_k: usize,
    /// Worker threads (1 = the sequential serve loop).
    pub threads: usize,
    /// Per-query scatter width across shards (`--shard-threads`;
    /// always 1 for the monolithic engine), so records taken at
    /// different scatter settings stay distinguishable.
    pub shard_threads: usize,
    /// Supervised `qgx shard` processes behind the served engine
    /// (`--shard-procs`; 0 = the engine ran in this process), so
    /// records taken across the process boundary stay distinguishable
    /// from in-process ones even though the answers are byte-identical.
    pub shard_procs: usize,
    /// End-to-end seconds spent serving (excludes world/index setup).
    pub total_seconds: f64,
    /// Queries per second over `total_seconds` (errors included — they
    /// are answered requests too).
    pub qps: f64,
    /// `qps / threads`: per-worker throughput, so thread-count scaling
    /// is readable straight off the record trajectory.
    pub qps_per_thread: f64,
    /// Retrieval execution mode served (`exact` or `pruned`), so
    /// records taken at different modes stay distinguishable.
    pub search_mode: String,
    /// Expansion-cache hits over the serve loop (0 without a cache).
    pub cache_hits: u64,
    /// Expansion-cache lookups over the serve loop (0 without a cache).
    pub cache_lookups: u64,
    /// `cache_hits / cache_lookups` (0.0 without a cache or lookups).
    pub cache_hit_rate: f64,
    /// Connections shed at the edge with 503 (always 0 for the
    /// in-process replay path — nothing queues there).
    pub shed: u64,
    /// Requests refused with a typed deadline timeout (408 over HTTP).
    pub timeouts: u64,
    /// Typed failures by wire code (`ServiceError::code` /
    /// `ParseError::code` values; empty when nothing failed).
    pub error_codes: std::collections::BTreeMap<String, u64>,
    /// How `latency` (and `conn_latency`) were computed: `"exact"` —
    /// nearest-rank percentiles over every raw sample (the bounded
    /// replay tiers) — or `"histogram"` — the log-bucketed
    /// constant-memory histogram long `qgx serve` runs record into,
    /// whose percentiles are bucket upper bounds (≤ +9.1% of exact,
    /// never below).
    pub latency_mode: String,
    /// Per-query latency distribution.
    pub latency: LatencySummary,
    /// Per-connection lifetime distribution (networked serving only;
    /// `None` for the in-process replay path).
    pub conn_latency: Option<LatencySummary>,
}

/// The bench record the `qgx` server archives (committed as
/// `BENCH_serve.json` for the seed tier) — schema-compatible with
/// [`BenchRecord`]: the shared identification and build-side fields
/// keep their names and meaning, `repro_bench_diff` diffs the `serve`
/// section tolerantly (records without one simply have no serve rows),
/// and `--history` renders both kinds side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRecord {
    /// Record-format version (shared counter with [`BenchRecord`]).
    pub schema: u32,
    /// Record kind discriminator: always `"serve"` (run records have
    /// no `kind` field and read as pipeline runs).
    pub kind: String,
    /// Queries in **one repetition of the actually served workload**
    /// (a `--queries` file can be any size; the tier's configured
    /// count is *not* assumed), so QPS/latency denominators are
    /// interpretable from the record alone.
    pub num_queries: usize,
    /// Topics in the synthetic Wikipedia.
    pub num_topics: usize,
    /// Articles per topic (the stress dial).
    pub articles_per_topic: usize,
    /// Synthetic-Wikipedia seed.
    pub wiki_seed: u64,
    /// Synthetic-corpus seed.
    pub corpus_seed: u64,
    /// Total seconds to synthesize and index/load the world.
    pub build_seconds: f64,
    /// Seconds to synthesize the wiki (+ corpus when needed).
    pub world_seconds: f64,
    /// Seconds to tokenize + index the corpus (0 when loaded).
    pub index_build_seconds: f64,
    /// Seconds to write the index artifact (0 unless written).
    pub index_write_seconds: f64,
    /// Seconds to load the index artifact (0 unless loaded).
    pub index_load_seconds: f64,
    /// `"built"` or `"loaded"`.
    pub index_source: String,
    /// Physical shards behind the engine (1 = monolithic).
    pub shard_count: usize,
    /// Per-shard segment load seconds, in shard order (empty unless a
    /// sharded artifact was loaded).
    pub shard_load_seconds: Vec<f64>,
    /// The socket address served (`None` for the in-process replay
    /// path; the `qgx serve` record carries the actual bound address).
    pub listen_addr: Option<String>,
    /// The serving measurements.
    pub serve: ServeSummary,
}

impl ServeRecord {
    /// Assemble a record from a finished serve loop.
    /// `workload_queries` is the size of one repetition of the served
    /// workload (file line count, seed query count, or stdin queries
    /// answered).
    pub fn new(
        config: &ExperimentConfig,
        build: &BuildStats,
        workload_queries: usize,
        serve: ServeSummary,
    ) -> ServeRecord {
        ServeRecord {
            // Shares the BenchRecord schema counter (9: latency_mode +
            // the "load" record kind; 8: streaming ingest record kind;
            // 7: shard processes — serve records grew shard_procs; 6:
            // networked serving — listen_addr,
            // shed/timeouts/error_codes, conn_latency; 5:
            // expansion-cache counters + search_mode; 4: shard fields +
            // per-thread QPS; 3 introduced the build breakdown these
            // fields mirror).
            schema: 9,
            kind: "serve".to_string(),
            num_queries: workload_queries,
            num_topics: config.wiki.num_topics,
            articles_per_topic: config.wiki.articles_per_topic,
            wiki_seed: config.wiki.seed,
            corpus_seed: config.corpus.seed,
            build_seconds: build.total_seconds(),
            world_seconds: build.world_seconds,
            index_build_seconds: build.index_build_seconds,
            index_write_seconds: build.index_write_seconds,
            index_load_seconds: build.index_load_seconds,
            index_source: build.index_source.name().to_string(),
            shard_count: build.shard_count,
            shard_load_seconds: build.shard_load_seconds.clone(),
            listen_addr: None,
            serve,
        }
    }
}

/// The ingest half of an [`IngestRecord`]: what `qgx ingest` /
/// `qgx compact` measured over a segment store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestSummary {
    /// Documents streamed out of the dump and indexed.
    pub docs_ingested: u64,
    /// Ingest batches committed (one segment + one generation each).
    pub batches: usize,
    /// Wall seconds spent streaming + indexing + committing.
    pub ingest_seconds: f64,
    /// `docs_ingested / ingest_seconds` (0.0 for an empty run).
    pub docs_per_second: f64,
    /// High-water mark of the streaming frame buffer, in bytes — the
    /// bounded-memory claim, measured (`DumpStream::peak_buffer_bytes`).
    pub peak_buffer_bytes: usize,
    /// Live segments before compaction (equals after when no
    /// compaction ran).
    pub segments_before_compaction: usize,
    /// Live segments after compaction.
    pub segments_after_compaction: usize,
    /// Wall seconds spent compacting (0.0 when no compaction ran).
    pub compaction_seconds: f64,
    /// Microseconds a live server paused queries while swapping onto a
    /// new generation (0 when the run didn't swap a live engine).
    pub swap_pause_us: f64,
    /// The store generation this run left live.
    pub generation: u64,
}

/// The bench record `qgx ingest`/`qgx compact` archive (committed as
/// `BENCH_ingest.json`) — shares the [`BenchRecord`] schema counter and
/// identification fields; `repro_bench_diff` reads the `ingest` section
/// tolerantly (records without one simply have no ingest rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestRecord {
    /// Record-format version (shared counter with [`BenchRecord`]).
    pub schema: u32,
    /// Record kind discriminator: always `"ingest"`.
    pub kind: String,
    /// Queries the workload tier configures (identification only; an
    /// ingest run answers none).
    pub num_queries: usize,
    /// Topics in the synthetic Wikipedia.
    pub num_topics: usize,
    /// Articles per topic (the stress dial).
    pub articles_per_topic: usize,
    /// Synthetic-Wikipedia seed.
    pub wiki_seed: u64,
    /// Synthetic-corpus seed.
    pub corpus_seed: u64,
    /// The ingest measurements.
    pub ingest: IngestSummary,
}

impl IngestRecord {
    /// Assemble a record from a finished ingest/compact run.
    pub fn new(config: &ExperimentConfig, ingest: IngestSummary) -> IngestRecord {
        IngestRecord {
            // 8 introduced this record kind (see BenchRecord::new's
            // schema history); 9 changed nothing about its shape.
            schema: 9,
            kind: "ingest".to_string(),
            num_queries: config.corpus.num_queries,
            num_topics: config.wiki.num_topics,
            articles_per_topic: config.wiki.articles_per_topic,
            wiki_seed: config.wiki.seed,
            corpus_seed: config.corpus.seed,
            ingest,
        }
    }
}

/// One offered-load step of `qgx bench`'s open-loop ladder: the
/// arrival generator fired `sent` requests at `offered_rps` regardless
/// of how fast the server answered (open loop — queueing delay counts
/// against latency, which is the whole point), and these are the
/// outcomes. Latency numbers come from the log-bucketed histogram
/// (`latency_mode` on the summary), measured from each request's
/// **scheduled** arrival, so coordinated omission cannot flatter the
/// tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadStep {
    /// Arrival rate the generator offered (requests/second).
    pub offered_rps: f64,
    /// Seconds the step was scheduled to run.
    pub duration_seconds: f64,
    /// Requests the generator sent.
    pub sent: u64,
    /// Requests answered 200.
    pub completed: u64,
    /// Requests answered with any non-200 (typed errors included).
    pub failures: u64,
    /// Requests shed at the edge (503 `overloaded`).
    pub shed: u64,
    /// Requests refused on deadline (408 `timeout`).
    pub timeouts: u64,
    /// Successful answers per second of actual step wall time — the
    /// goodput the ladder plots against `offered_rps`.
    pub goodput_qps: f64,
    /// Median latency from scheduled arrival, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: f64,
    /// Worst observed latency, microseconds (exact).
    pub max_us: f64,
    /// Mean latency, microseconds (exact).
    pub mean_us: f64,
}

/// The measurement half of a [`LoadRecord`]: the whole ladder plus
/// top-level copies of the **last** step's headline numbers, so
/// schema-tolerant diffing (`repro_bench_diff`) and the CI SLO gate
/// can address them with fixed paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    /// The ladder, in the order the steps ran.
    pub steps: Vec<LoadStep>,
    /// Client connections driving the open loop.
    pub conns: usize,
    /// HTTP workers serving it.
    pub workers: usize,
    /// Zipf exponent of the query mix (0 = uniform).
    pub zipf: f64,
    /// Generator seed — same seed, same arrival schedule and query
    /// sequence.
    pub seed: u64,
    /// Warm-up passes over the query pool before the ladder (0 = cold
    /// cache).
    pub warmup_passes: usize,
    /// Always `"histogram"` for the open-loop harness (see
    /// [`ServeSummary::latency_mode`]).
    pub latency_mode: String,
    /// Last step's offered rate (the headline operating point).
    pub offered_rps: f64,
    /// Last step's goodput.
    pub goodput_qps: f64,
    /// Last step's median latency, microseconds.
    pub p50_us: f64,
    /// Last step's 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Last step's 99.9th-percentile latency, microseconds.
    pub p999_us: f64,
}

impl LoadSummary {
    /// Assemble a summary from a finished ladder, lifting the last
    /// step's headline numbers to the top level.
    pub fn new(
        steps: Vec<LoadStep>,
        conns: usize,
        workers: usize,
        zipf: f64,
        seed: u64,
        warmup_passes: usize,
    ) -> LoadSummary {
        let last = steps.last().cloned().unwrap_or(LoadStep {
            offered_rps: 0.0,
            duration_seconds: 0.0,
            sent: 0,
            completed: 0,
            failures: 0,
            shed: 0,
            timeouts: 0,
            goodput_qps: 0.0,
            p50_us: 0.0,
            p99_us: 0.0,
            p999_us: 0.0,
            max_us: 0.0,
            mean_us: 0.0,
        });
        LoadSummary {
            steps,
            conns,
            workers,
            zipf,
            seed,
            warmup_passes,
            latency_mode: "histogram".to_string(),
            offered_rps: last.offered_rps,
            goodput_qps: last.goodput_qps,
            p50_us: last.p50_us,
            p99_us: last.p99_us,
            p999_us: last.p999_us,
        }
    }
}

/// The bench record `qgx bench` archives (committed as
/// `BENCH_load.json` for the seed tier) — shares the [`BenchRecord`]
/// schema counter and identification fields; `repro_bench_diff` reads
/// the `load` section tolerantly (records without one simply have no
/// load rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadRecord {
    /// Record-format version (shared counter with [`BenchRecord`]).
    pub schema: u32,
    /// Record kind discriminator: always `"load"`.
    pub kind: String,
    /// Queries in the pool the Zipf/uniform mix draws from.
    pub num_queries: usize,
    /// Topics in the synthetic Wikipedia.
    pub num_topics: usize,
    /// Articles per topic (the stress dial).
    pub articles_per_topic: usize,
    /// Synthetic-Wikipedia seed.
    pub wiki_seed: u64,
    /// Synthetic-corpus seed.
    pub corpus_seed: u64,
    /// The socket address the ladder drove.
    pub listen_addr: Option<String>,
    /// The load measurements.
    pub load: LoadSummary,
}

impl LoadRecord {
    /// Assemble a record from a finished ladder. `pool_queries` is the
    /// size of the query pool the mix sampled.
    pub fn new(config: &ExperimentConfig, pool_queries: usize, load: LoadSummary) -> LoadRecord {
        LoadRecord {
            // 9 introduced this record kind (see BenchRecord::new's
            // schema history).
            schema: 9,
            kind: "load".to_string(),
            num_queries: pool_queries,
            num_topics: config.wiki.num_topics,
            articles_per_topic: config.wiki.articles_per_topic,
            wiki_seed: config.wiki.seed,
            corpus_seed: config.corpus.seed,
            listen_addr: None,
            load,
        }
    }
}

/// The deterministic plan of one open-loop ladder step: for each
/// request, its scheduled arrival offset (µs from the step start) and
/// the query-pool index it sends. Arrivals are a Poisson process at
/// `rps` (exponential inter-arrival gaps via inverse-CDF over the
/// seeded generator); query indices are Zipf(`zipf`)-distributed over
/// `0..pool` (`zipf = 0` = uniform). Same `(rps, duration, pool, zipf,
/// seed)` → byte-identical plan, which is what makes a `qgx bench`
/// ladder replayable.
pub fn load_plan(
    rps: f64,
    duration_seconds: f64,
    pool: usize,
    zipf: f64,
    seed: u64,
) -> Vec<(u64, usize)> {
    use rand::{Rng, SeedableRng};
    assert!(rps > 0.0 && rps.is_finite(), "offered RPS must be positive");
    assert!(
        duration_seconds > 0.0 && duration_seconds.is_finite(),
        "step duration must be positive"
    );
    // Distinct streams for gaps and queries so changing the pool or
    // exponent never perturbs the arrival schedule.
    let mut gaps = rand::rngs::StdRng::seed_from_u64(seed);
    let mut mix = ZipfSampler::new(pool, zipf, seed ^ 0x9E37_79B9_7F4A_7C15);
    let horizon_us = duration_seconds * 1e6;
    let mean_gap_us = 1e6 / rps;
    let mut t_us = 0.0f64;
    let mut plan = Vec::with_capacity((rps * duration_seconds) as usize + 1);
    loop {
        // Exponential gap: -ln(1-u) * mean, u uniform in [0,1).
        let u: f64 = gaps.gen_range(0.0..1.0);
        t_us += -(1.0 - u).ln() * mean_gap_us;
        if t_us >= horizon_us {
            return plan;
        }
        plan.push((t_us as u64, mix.sample()));
    }
}

/// Build the paper-scale experiment and analyze all 50 queries using
/// all available cores. Prints provenance (seeds, sizes, timing) to
/// stderr so stdout stays clean table output.
pub fn standard_report() -> Report {
    report_for(&ExperimentConfig::default_paper())
}

/// Build and run an experiment for an explicit configuration.
pub fn report_for(config: &ExperimentConfig) -> Report {
    report_and_summary(config).0
}

/// [`report_for`], also returning the pipeline's [`RunSummary`] and the
/// build-side [`BuildStats`] — the numbers `repro_all` archives.
pub fn report_and_summary(config: &ExperimentConfig) -> (Report, RunSummary, BuildStats) {
    report_and_summary_cached(config, None)
}

/// [`report_and_summary`] with an optional index-cache directory: the
/// first run builds and persists the inverted index, subsequent runs
/// load it (byte-identical `Report` either way).
pub fn report_and_summary_cached(
    config: &ExperimentConfig,
    index_cache: Option<&std::path::Path>,
) -> (Report, RunSummary, BuildStats) {
    report_and_summary_with(config, index_cache, &WorldOptions::default())
}

/// [`report_and_summary_cached`] with explicit [`WorldOptions`]: the
/// `--shards N` / `--mmap` knobs. The `Report` is byte-identical at any
/// shard count.
pub fn report_and_summary_with(
    config: &ExperimentConfig,
    index_cache: Option<&std::path::Path>,
    options: &WorldOptions,
) -> (Report, RunSummary, BuildStats) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    eprintln!(
        "# querygraph reproduction: wiki seed {:#x}, corpus seed {:#x}, {} queries, {} threads, \
         {} shard(s)",
        config.wiki.seed,
        config.corpus.seed,
        config.corpus.num_queries,
        threads,
        options.shard_count(),
    );
    let t0 = Instant::now();
    let (experiment, build) =
        querygraph_core::cache::build_experiment_with(config, index_cache, options);
    let build_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "# built: {} articles, {} categories, {} docs, {build_seconds:.2}s \
         (world {:.2}s, index {} {:.2}s)",
        experiment.wiki.kb.num_articles(),
        experiment.wiki.kb.num_categories(),
        experiment.corpus.corpus.len(),
        build.world_seconds,
        build.index_source.name(),
        build.index_build_seconds + build.index_write_seconds + build.index_load_seconds,
    );
    let (report, summary) = experiment.run_parallel_with_summary(threads);
    eprint!("{}", indent_hash(&summary.render()));
    (report, summary, build)
}

fn indent_hash(s: &str) -> String {
    s.lines().map(|l| format!("# {l}\n")).collect()
}

/// The test-scale configuration (`--tiny` flag of the repro binaries):
/// the same miniature world the unit tests use.
pub fn tiny_config() -> ExperimentConfig {
    ExperimentConfig::tiny()
}

/// A smaller configuration for quick looks (`--quick` flag of the repro
/// binaries): 12 queries instead of 50.
pub fn quick_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default_paper();
    cfg.wiki.num_topics = 12;
    cfg.corpus.num_queries = 12;
    cfg.corpus.noise_docs = 300;
    cfg
}

/// The paper-scale stress configuration (`--stress`): a 100k+ article
/// knowledge base and ~31k documents.
pub fn stress_config() -> ExperimentConfig {
    ExperimentConfig::stress()
}

/// `--stress --quick`: the same stress-scale world, but only 8 of the
/// 60 queries analyzed — world synthesis and indexing (what the stress
/// tier measures) are untouched while CI stays fast.
pub fn stress_quick_config() -> ExperimentConfig {
    ExperimentConfig::stress_sampled(8)
}

/// The track-scale configuration (`--track`): the stress knowledge
/// base over a ~237k-document corpus — the ImageCLEF 2011 Wikipedia
/// track's size, and the tier `qgx ingest` exists for.
pub fn track_config() -> ExperimentConfig {
    ExperimentConfig::track()
}

/// `--track --quick`: the same ~237k-document world, but only 6 of the
/// 60 queries analyzed, so CI can build and serve the track tier in its
/// sampled lane.
pub fn track_quick_config() -> ExperimentConfig {
    ExperimentConfig::track_sampled(6)
}

/// Workload tiers selected by the shared CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// `--tiny` — the unit-test world.
    Tiny,
    /// `--quick` — 12 queries.
    Quick,
    /// default — the paper-scale seed world.
    Paper,
    /// `--stress` — 100k+ articles.
    Stress,
    /// `--stress --quick` — stress world, sampled queries.
    StressQuick,
    /// `--track` — the ~237k-document ingest tier.
    Track,
    /// `--track --quick` — track world, sampled queries.
    TrackQuick,
}

impl Tier {
    /// The default bench-record path for this tier. Only the full
    /// `Paper` and `Stress` tiers write the **committed** trajectory
    /// anchors (`BENCH_seed.json` / `BENCH_stress.json`); the sampled
    /// tiers get their own (gitignored) files so a casual `--tiny` or
    /// `--stress --quick` run can never clobber an anchor with an
    /// incomparable workload.
    pub fn default_bench_path(self) -> &'static str {
        match self {
            Tier::Tiny => "BENCH_tiny.json",
            Tier::Quick => "BENCH_quick.json",
            Tier::Paper => "BENCH_seed.json",
            Tier::Stress => "BENCH_stress.json",
            Tier::StressQuick => "BENCH_stress_quick.json",
            Tier::Track => "BENCH_track.json",
            Tier::TrackQuick => "BENCH_track_quick.json",
        }
    }

    /// The configuration this tier runs.
    pub fn config(self) -> ExperimentConfig {
        match self {
            Tier::Tiny => tiny_config(),
            Tier::Quick => quick_config(),
            Tier::Paper => ExperimentConfig::default_paper(),
            Tier::Stress => stress_config(),
            Tier::StressQuick => stress_quick_config(),
            Tier::Track => track_config(),
            Tier::TrackQuick => track_quick_config(),
        }
    }
}

/// The shared CLI of the repro binaries.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Selected workload tier.
    pub tier: Tier,
    /// `--index-cache <dir>`: persist/load the inverted index there.
    pub index_cache: Option<PathBuf>,
    /// `--bench-out <path>`: where to archive the bench record
    /// (defaults to the tier's [`Tier::default_bench_path`]).
    pub bench_out: Option<String>,
    /// `--shards <n>`: doc-partitioned sharded backend + segmented
    /// artifact layout (`None`: monolithic).
    pub shards: Option<usize>,
    /// `--mmap`: memory-map index artifacts instead of reading them.
    pub mmap: bool,
}

/// The operand following `flag` in `args`, when the flag is present.
/// Exits with a message when the flag is last (missing operand) — the
/// shared behaviour of every repro/serve binary's CLI.
pub fn flag_operand(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|pos| {
        args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} requires an operand");
            std::process::exit(2);
        })
    })
}

/// [`flag_operand`] parsed as a number; exits with a message on a
/// non-numeric operand.
pub fn flag_usize(args: &[String], flag: &str) -> Option<usize> {
    flag_operand(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} operand must be a number, got {v:?}");
            std::process::exit(2);
        })
    })
}

/// [`flag_operand`] parsed as a float; exits with a message on a
/// non-numeric operand.
pub fn flag_f64(args: &[String], flag: &str) -> Option<f64> {
    flag_operand(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} operand must be a number, got {v:?}");
            std::process::exit(2);
        })
    })
}

/// Seeded Zipf-distributed index sampler — `qgx --zipf <s>`'s
/// head-heavy workload generator. Index `i` (0-based rank) is drawn
/// with probability ∝ 1/(i+1)^s via inverse-CDF over the cumulative
/// weights, so `s = 0` is uniform and larger `s` concentrates mass on
/// the first few queries of the pool — the repeat-heavy distribution a
/// serving cache exists for. Deterministic for a given `(n, s, seed)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative unnormalized weights; `cum[i]` = Σ_{r≤i} 1/(r+1)^s.
    cum: Vec<f64>,
    rng: rand::rngs::StdRng,
}

impl ZipfSampler {
    /// Sampler over `0..n` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64, seed: u64) -> ZipfSampler {
        use rand::SeedableRng;
        assert!(n > 0, "ZipfSampler over an empty pool");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be ≥ 0");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cum.push(total);
        }
        ZipfSampler {
            cum,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Draw one index in `0..n`.
    pub fn sample(&mut self) -> usize {
        use rand::Rng;
        let total = *self.cum.last().expect("nonempty pool");
        let x = self.rng.gen_range(0.0..total);
        // First rank whose cumulative weight exceeds the draw.
        self.cum
            .partition_point(|&c| c <= x)
            .min(self.cum.len() - 1)
    }
}

impl CliOptions {
    /// Parse `std::env::args`. Exits with a message on malformed flags
    /// (missing `--index-cache` / `--bench-out` operand).
    pub fn from_args() -> CliOptions {
        let args: Vec<String> = std::env::args().collect();
        Self::from_vec(&args)
    }

    /// Parse an explicit argument vector (testable).
    pub fn from_vec(args: &[String]) -> CliOptions {
        let has = |flag: &str| args.iter().any(|a| a == flag);
        let operand = |flag: &'static str| flag_operand(args, flag);
        let tier = match (
            has("--track"),
            has("--stress"),
            has("--quick"),
            has("--tiny"),
        ) {
            (true, _, true, _) => Tier::TrackQuick,
            (true, _, false, _) => Tier::Track,
            (false, true, true, _) => Tier::StressQuick,
            (false, true, false, _) => Tier::Stress,
            (false, false, _, true) => Tier::Tiny,
            (false, false, true, false) => Tier::Quick,
            _ => Tier::Paper,
        };
        CliOptions {
            tier,
            index_cache: operand("--index-cache").map(PathBuf::from),
            bench_out: operand("--bench-out"),
            shards: flag_usize(args, "--shards").map(|n| n.max(1)),
            mmap: has("--mmap"),
        }
    }

    /// The [`WorldOptions`] these flags select.
    pub fn world_options(&self) -> WorldOptions {
        WorldOptions {
            shards: self.shards,
            mmap: self.mmap,
        }
    }

    /// The configuration this invocation runs.
    pub fn config(&self) -> ExperimentConfig {
        self.tier.config()
    }

    /// The bench-record path: `--bench-out` or the tier default.
    pub fn bench_path(&self) -> &str {
        self.bench_out
            .as_deref()
            .unwrap_or_else(|| self.tier.default_bench_path())
    }
}

/// Parse the common CLI of the repro binaries: `--quick` switches to
/// [`quick_config`], `--tiny` to [`tiny_config`], `--stress` to the
/// stress tier.
pub fn config_from_args() -> ExperimentConfig {
    CliOptions::from_args().config()
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_core::experiment::Experiment;

    fn opts(args: &[&str]) -> CliOptions {
        let v: Vec<String> = std::iter::once("bin".to_string())
            .chain(args.iter().map(|s| s.to_string()))
            .collect();
        CliOptions::from_vec(&v)
    }

    #[test]
    fn quick_config_is_consistent() {
        let cfg = quick_config();
        assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
    }

    #[test]
    fn stress_configs_are_consistent() {
        for cfg in [stress_config(), stress_quick_config()] {
            assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
            assert!(cfg.wiki.num_topics * cfg.wiki.articles_per_topic >= 100_000);
        }
        assert!(stress_quick_config().corpus.num_queries < stress_config().corpus.num_queries);
    }

    #[test]
    fn cli_tier_selection() {
        assert_eq!(opts(&[]).tier, Tier::Paper);
        assert_eq!(opts(&["--tiny"]).tier, Tier::Tiny);
        assert_eq!(opts(&["--quick"]).tier, Tier::Quick);
        assert_eq!(opts(&["--stress"]).tier, Tier::Stress);
        assert_eq!(opts(&["--stress", "--quick"]).tier, Tier::StressQuick);
        assert_eq!(opts(&["--track"]).tier, Tier::Track);
        assert_eq!(opts(&["--track", "--quick"]).tier, Tier::TrackQuick);
        assert_eq!(Tier::Stress.default_bench_path(), "BENCH_stress.json");
        assert_eq!(Tier::Paper.default_bench_path(), "BENCH_seed.json");
        assert_eq!(Tier::Track.default_bench_path(), "BENCH_track.json");
        // Sampled tiers must never default onto the committed anchors.
        for tier in [Tier::Tiny, Tier::Quick, Tier::StressQuick, Tier::TrackQuick] {
            assert!(
                !["BENCH_seed.json", "BENCH_stress.json", "BENCH_track.json"]
                    .contains(&tier.default_bench_path()),
                "{tier:?} would clobber a committed trajectory anchor"
            );
        }
    }

    #[test]
    fn track_configs_are_consistent() {
        for cfg in [track_config(), track_quick_config()] {
            assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
            assert!(
                cfg.corpus.noise_docs >= 200_000,
                "track must be track-scale"
            );
        }
        assert!(track_quick_config().corpus.num_queries < track_config().corpus.num_queries);
        assert_eq!(Tier::Track.config(), track_config());
        assert_eq!(Tier::TrackQuick.config(), track_quick_config());
    }

    #[test]
    fn cli_index_cache_path() {
        assert_eq!(opts(&[]).index_cache, None);
        assert_eq!(
            opts(&["--index-cache", "/tmp/cache"]).index_cache,
            Some(PathBuf::from("/tmp/cache"))
        );
    }

    #[test]
    fn cli_shards_and_mmap() {
        let defaults = opts(&[]);
        assert_eq!(defaults.shards, None);
        assert!(!defaults.mmap);
        assert_eq!(defaults.world_options().shard_count(), 1);
        let o = opts(&["--shards", "4", "--mmap"]);
        assert_eq!(o.shards, Some(4));
        assert!(o.mmap);
        let wo = o.world_options();
        assert_eq!(wo.shards, Some(4));
        assert_eq!(wo.shard_count(), 4);
        assert_eq!(
            wo.source(),
            querygraph_retrieval::ondisk::ArtifactSource::Mmap
        );
        // --shards 0 is clamped to 1 shard rather than rejected.
        assert_eq!(opts(&["--shards", "0"]).shards, Some(1));
    }

    #[test]
    fn cli_bench_out_overrides_tier_default() {
        assert_eq!(opts(&["--tiny"]).bench_path(), "BENCH_tiny.json");
        let o = opts(&["--tiny", "--bench-out", "custom.json"]);
        assert_eq!(o.bench_path(), "custom.json");
        assert_eq!(o.bench_out.as_deref(), Some("custom.json"));
    }

    #[test]
    fn zipf_sampler_is_seeded_head_heavy_and_in_range() {
        let draws = 4000;
        let mut counts = [0usize; 10];
        let mut a = ZipfSampler::new(10, 1.2, 0xBEEF);
        for _ in 0..draws {
            let i = a.sample();
            assert!(i < 10, "sample out of range: {i}");
            counts[i] += 1;
        }
        // Head-heavy: rank 0 dominates, and the head outweighs the tail.
        assert!(counts[0] > counts[1], "rank 0 must lead: {counts:?}");
        assert!(
            counts[0] + counts[1] > counts[5..].iter().sum::<usize>(),
            "head must outweigh the tail: {counts:?}"
        );
        // Deterministic: the same (n, s, seed) replays the same stream.
        let mut b = ZipfSampler::new(10, 1.2, 0xBEEF);
        let mut c = ZipfSampler::new(10, 1.2, 0xBEEF);
        let replay: Vec<usize> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(replay, (0..100).map(|_| c.sample()).collect::<Vec<_>>());
        // s = 0 degenerates to uniform: every index is reachable.
        let mut u = ZipfSampler::new(4, 0.0, 7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample()] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn flag_f64_parses() {
        let args: Vec<String> = ["bin", "--zipf", "1.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_f64(&args, "--zipf"), Some(1.5));
        assert_eq!(flag_f64(&args, "--absent"), None);
    }

    #[test]
    fn latency_summary_percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::of(&samples);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p90_us, 90.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-12);
        // Small sample: nearest rank clamps sanely.
        let one = LatencySummary::of(&[7.0]);
        assert_eq!((one.p50_us, one.p99_us, one.max_us), (7.0, 7.0, 7.0));
        let empty = LatencySummary::of(&[]);
        assert_eq!(empty.max_us, 0.0);
        assert!(one.render().contains("p99 7.0µs"));
    }

    #[test]
    fn serve_record_reports_actual_workload_size() {
        use querygraph_core::cache::IndexSource;
        let build = BuildStats {
            world_seconds: 0.5,
            index_build_seconds: 0.0,
            index_write_seconds: 0.0,
            index_load_seconds: 0.125,
            index_source: IndexSource::Loaded,
            shard_count: 1,
            shard_load_seconds: Vec::new(),
        };
        let mut error_codes = std::collections::BTreeMap::new();
        error_codes.insert("no_linked_entities".to_string(), 1u64);
        let serve = ServeSummary {
            strategy: "cycles".to_string(),
            queries_served: 9,
            failures: 1,
            repeat: 2,
            top_k: 5,
            threads: 2,
            shard_threads: 1,
            shard_procs: 0,
            total_seconds: 0.5,
            qps: 20.0,
            qps_per_thread: 10.0,
            search_mode: "exact".to_string(),
            cache_hits: 4,
            cache_lookups: 10,
            cache_hit_rate: 0.4,
            shed: 3,
            timeouts: 2,
            error_codes,
            latency_mode: "exact".to_string(),
            latency: LatencySummary::of(&[100.0, 200.0]),
            conn_latency: Some(LatencySummary::of(&[150.0, 300.0])),
        };
        // A 5-query file served twice: the record says 5, not the
        // tier's configured count.
        let mut record = ServeRecord::new(&tiny_config(), &build, 5, serve);
        record.listen_addr = Some("127.0.0.1:8080".to_string());
        assert_eq!(record.num_queries, 5, "workload size, not the tier's count");
        assert_eq!(record.kind, "serve");
        assert_eq!(record.index_source, "loaded");
        assert_eq!(record.shard_count, 1);
        let json = serde_json::to_string(&record).expect("record serializes");
        for field in [
            "\"kind\"",
            "\"serve\"",
            "p50_us",
            "qps",
            "qps_per_thread",
            "strategy",
            "shard_count",
            "search_mode",
            "cache_hits",
            "cache_lookups",
            "cache_hit_rate",
            "shard_procs",
            "\"shed\"",
            "\"timeouts\"",
            "error_codes",
            "no_linked_entities",
            "latency_mode",
            "\"exact\"",
            "listen_addr",
            "conn_latency",
        ] {
            assert!(json.contains(field), "record missing {field}");
        }
        let back: ServeRecord = serde_json::from_str(&json).expect("record parses");
        assert_eq!(back, record);
        // The in-process replay shape: no address, no connections.
        let mut plain = record.clone();
        plain.listen_addr = None;
        plain.serve.conn_latency = None;
        let json = serde_json::to_string(&plain).expect("record serializes");
        let back: ServeRecord = serde_json::from_str(&json).expect("record parses");
        assert_eq!(back, plain);
    }

    #[test]
    fn load_plan_is_deterministic_for_a_seed() {
        // The `qgx bench --seed` contract: same seed, same arrival
        // schedule AND same query sequence.
        let a = load_plan(500.0, 2.0, 12, 1.1, 0xFEED);
        let b = load_plan(500.0, 2.0, 12, 1.1, 0xFEED);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed reshuffles both components.
        let c = load_plan(500.0, 2.0, 12, 1.1, 0xFEED + 1);
        assert_ne!(a, c);
        // Changing only the query mix leaves the arrival schedule
        // untouched (separate generator streams).
        let d = load_plan(500.0, 2.0, 12, 0.0, 0xFEED);
        assert_eq!(
            a.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            d.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn load_plan_matches_offered_rate_and_pool() {
        let rps = 1000.0;
        let secs = 4.0;
        let plan = load_plan(rps, secs, 5, 0.0, 42);
        // Poisson count over 4s at 1000/s: mean 4000, sd ~63. A ±20%
        // band is ~12 sigma — effectively deterministic given the
        // fixed seed, but robust to generator evolution.
        let n = plan.len() as f64;
        assert!(
            (rps * secs * 0.8..rps * secs * 1.2).contains(&n),
            "arrival count {n} is far from the offered rate"
        );
        let mut last = 0;
        for &(t, q) in &plan {
            assert!(t < (secs * 1e6) as u64, "arrival past the horizon");
            assert!(t >= last, "arrivals must be sorted");
            assert!(q < 5, "query index out of pool");
            last = t;
        }
    }

    #[test]
    fn load_record_round_trips_and_lifts_last_step() {
        let step = |rps: f64, p99: f64| LoadStep {
            offered_rps: rps,
            duration_seconds: 2.0,
            sent: 100,
            completed: 98,
            failures: 2,
            shed: 1,
            timeouts: 1,
            goodput_qps: rps * 0.98,
            p50_us: 800.0,
            p99_us: p99,
            p999_us: p99 * 2.0,
            max_us: p99 * 3.0,
            mean_us: 900.0,
        };
        let summary = LoadSummary::new(
            vec![step(100.0, 4000.0), step(200.0, 9000.0)],
            4,
            8,
            1.1,
            0xBEEF,
            1,
        );
        // The headline numbers are the last (highest-load) step's.
        assert_eq!(summary.offered_rps, 200.0);
        assert_eq!(summary.p99_us, 9000.0);
        assert_eq!(summary.latency_mode, "histogram");
        let record = LoadRecord::new(&tiny_config(), 12, summary);
        assert_eq!(record.schema, 9);
        assert_eq!(record.kind, "load");
        assert_eq!(record.num_queries, 12);
        let json = serde_json::to_string(&record).expect("record serializes");
        for field in [
            "\"load\"",
            "offered_rps",
            "goodput_qps",
            "p999_us",
            "\"steps\"",
            "warmup_passes",
            "latency_mode",
            "\"zipf\"",
            "\"seed\"",
        ] {
            assert!(json.contains(field), "record missing {field}");
        }
        let back: LoadRecord = serde_json::from_str(&json).expect("record parses");
        assert_eq!(back, record);
        // An empty ladder still summarizes (all-zero headline).
        let empty = LoadSummary::new(Vec::new(), 1, 1, 0.0, 0, 0);
        assert_eq!(empty.p99_us, 0.0);
        assert_eq!(empty.goodput_qps, 0.0);
    }

    #[test]
    fn ingest_record_round_trips_and_carries_measurements() {
        let ingest = IngestSummary {
            docs_ingested: 1000,
            batches: 4,
            ingest_seconds: 2.0,
            docs_per_second: 500.0,
            peak_buffer_bytes: 70_000,
            segments_before_compaction: 4,
            segments_after_compaction: 2,
            compaction_seconds: 0.25,
            swap_pause_us: 120.0,
            generation: 5,
        };
        let record = IngestRecord::new(&tiny_config(), ingest);
        assert_eq!(record.schema, 9);
        assert_eq!(record.kind, "ingest");
        let json = serde_json::to_string(&record).expect("record serializes");
        for field in [
            "\"ingest\"",
            "docs_ingested",
            "docs_per_second",
            "peak_buffer_bytes",
            "segments_before_compaction",
            "segments_after_compaction",
            "compaction_seconds",
            "swap_pause_us",
            "generation",
        ] {
            assert!(json.contains(field), "record missing {field}");
        }
        let back: IngestRecord = serde_json::from_str(&json).expect("record parses");
        assert_eq!(back, record);
    }

    #[test]
    fn bench_record_schema_9_carries_build_breakdown() {
        use querygraph_core::cache::IndexSource;
        let build = BuildStats {
            world_seconds: 0.5,
            index_build_seconds: 0.0,
            index_write_seconds: 0.0,
            index_load_seconds: 0.125,
            index_source: IndexSource::Loaded,
            shard_count: 1,
            shard_load_seconds: Vec::new(),
        };
        let exp = Experiment::build(&tiny_config());
        let (_, run) = exp.run_parallel_with_summary(2);
        let record = BenchRecord::new(&tiny_config(), &build, run);
        assert_eq!(record.schema, 9);
        assert_eq!(record.index_source, "loaded");
        assert_eq!(record.shard_count, 1);
        assert!(record.shard_load_seconds.is_empty());
        assert!((record.build_seconds - 0.625).abs() < 1e-12);
        let json = serde_json::to_string(&record).expect("record serializes");
        for field in [
            "world_seconds",
            "index_build_seconds",
            "index_write_seconds",
            "index_load_seconds",
            "index_source",
            "articles_per_topic",
            "shard_count",
            "shard_load_seconds",
        ] {
            assert!(json.contains(field), "record missing {field}");
        }
        let back: BenchRecord = serde_json::from_str(&json).expect("record parses");
        assert_eq!(back, record);
    }
}
