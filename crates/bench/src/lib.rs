//! # querygraph-bench
//!
//! The reproduction harness: one `repro_*` binary per table and figure
//! of the paper (see DESIGN.md §3 for the index), plus Criterion
//! micro-benchmarks for the performance-critical kernels (`benches/`).
//!
//! All binaries run the same standard experiment
//! ([`standard_report`]) so their numbers are mutually consistent;
//! `repro_all` prints everything at once and is what EXPERIMENTS.md is
//! generated from.

use querygraph_core::experiment::{Experiment, ExperimentConfig, Report};
use std::time::Instant;

/// Build the paper-scale experiment and analyze all 50 queries using
/// all available cores. Prints provenance (seeds, sizes, timing) to
/// stderr so stdout stays clean table output.
pub fn standard_report() -> Report {
    report_for(&ExperimentConfig::default_paper())
}

/// Build and run an experiment for an explicit configuration.
pub fn report_for(config: &ExperimentConfig) -> Report {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    eprintln!(
        "# querygraph reproduction: wiki seed {:#x}, corpus seed {:#x}, {} queries, {} threads",
        config.wiki.seed, config.corpus.seed, config.corpus.num_queries, threads
    );
    let t0 = Instant::now();
    let experiment = Experiment::build(config);
    eprintln!(
        "# built: {} articles, {} categories, {} docs, {:.2}s",
        experiment.wiki.kb.num_articles(),
        experiment.wiki.kb.num_categories(),
        experiment.corpus.corpus.len(),
        t0.elapsed().as_secs_f64()
    );
    let t1 = Instant::now();
    let report = experiment.run_parallel(threads);
    eprintln!("# analyzed: {:.2}s", t1.elapsed().as_secs_f64());
    report
}

/// A smaller configuration for quick looks (`--quick` flag of the repro
/// binaries): 12 queries instead of 50.
pub fn quick_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default_paper();
    cfg.wiki.num_topics = 12;
    cfg.corpus.num_queries = 12;
    cfg.corpus.noise_docs = 300;
    cfg
}

/// Parse the common CLI of the repro binaries: `--quick` switches to
/// [`quick_config`].
pub fn config_from_args() -> ExperimentConfig {
    if std::env::args().any(|a| a == "--quick") {
        quick_config()
    } else {
        ExperimentConfig::default_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_consistent() {
        let cfg = quick_config();
        assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
    }
}
