//! Stage-by-stage comparison of two `BENCH_seed.json` records — the
//! engine behind the `repro_bench_diff` binary and the CI bench gate.
//!
//! Records are consumed as loose JSON trees rather than typed
//! [`crate::BenchRecord`]s so the tool can diff across schema versions
//! (a `main` baseline produced by an older binary must stay parseable
//! from a PR's newer one).

use serde::Value;

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDiff {
    /// Stage name (or `"wall_seconds"` / `"build_seconds"`).
    pub name: String,
    /// Baseline seconds (`None`: stage absent in the baseline record).
    pub base: Option<f64>,
    /// Candidate seconds (`None`: stage absent in the candidate).
    pub cand: Option<f64>,
}

impl StageDiff {
    /// Candidate − baseline, when both sides exist.
    pub fn abs_delta(&self) -> Option<f64> {
        Some(self.cand? - self.base?)
    }

    /// Percent change vs the baseline; `None` when either side is
    /// missing or the baseline is ~zero (a percentage would be noise).
    pub fn pct_delta(&self) -> Option<f64> {
        let (base, cand) = (self.base?, self.cand?);
        if base.abs() < 1e-9 {
            return None;
        }
        Some(100.0 * (cand - base) / base)
    }
}

/// The full comparison of two bench records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// End-to-end pipeline wall clock — the regression-gate quantity.
    pub wall: StageDiff,
    /// World synthesis + indexing.
    pub build: StageDiff,
    /// Build-side breakdown (schema ≥ 3: `world_seconds`,
    /// `index_build_seconds`, `index_write_seconds`,
    /// `index_load_seconds`). Rows whose field is absent on both sides
    /// (old records) are dropped; absent on one side renders as a dash,
    /// so new stages diff tolerantly across schema versions.
    pub build_stages: Vec<StageDiff>,
    /// Serving measurements (`serve` records from `qgx`): total
    /// seconds, QPS, latency percentiles. Same tolerance rules as
    /// `build_stages` — pipeline-run records simply have no serve rows.
    pub serve_stages: Vec<StageDiff>,
    /// Ingest measurements (schema-8 `ingest` records from
    /// `qgx ingest`/`qgx compact`): docs/sec, compaction wall, swap
    /// pause. Same tolerance rules — run/serve records have no ingest
    /// rows.
    pub ingest_stages: Vec<StageDiff>,
    /// Open-loop load measurements (schema-9 `load` records from
    /// `qgx bench`): offered rate, goodput, and tail latency at the
    /// ladder's last step. Same tolerance rules — other record kinds
    /// have no load rows, and the `load_p99_us` row feeds the CI SLO
    /// gate ([`BenchDiff::load_p99_regression_pct`]).
    pub load_stages: Vec<StageDiff>,
    /// Per-stage seconds, in baseline-then-new order.
    pub stages: Vec<StageDiff>,
}

impl BenchDiff {
    /// `wall_seconds` percent change (positive = slower). 0 when either
    /// record lacks the field.
    pub fn wall_regression_pct(&self) -> f64 {
        self.wall.pct_delta().unwrap_or(0.0)
    }

    /// `load.p99_us` percent change (positive = slower tail) — the
    /// `load-smoke` SLO gate quantity. 0 when either record lacks the
    /// field (a run/serve baseline cannot gate a load candidate).
    pub fn load_p99_regression_pct(&self) -> f64 {
        self.load_stages
            .iter()
            .find(|d| d.name == "load_p99_us")
            .and_then(StageDiff::pct_delta)
            .unwrap_or(0.0)
    }

    /// Render as an aligned text table for terminals and CI logs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>12} {:>12} {:>9}\n",
            "stage", "base (s)", "cand (s)", "delta (s)", "delta %"
        ));
        for d in self.rows() {
            out.push_str(&format!(
                "{:<20} {:>12} {:>12} {:>12} {:>9}\n",
                d.name,
                fmt_opt(d.base),
                fmt_opt(d.cand),
                fmt_opt(d.abs_delta()),
                fmt_pct(d.pct_delta()),
            ));
        }
        out
    }

    /// Render as a GitHub-flavored markdown table (for
    /// `$GITHUB_STEP_SUMMARY`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| stage | base (s) | cand (s) | delta (s) | delta % |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for d in self.rows() {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                d.name,
                fmt_opt(d.base),
                fmt_opt(d.cand),
                fmt_opt(d.abs_delta()),
                fmt_pct(d.pct_delta()),
            ));
        }
        out
    }

    fn rows(&self) -> impl Iterator<Item = &StageDiff> {
        self.stages
            .iter()
            .chain(&self.build_stages)
            .chain(&self.serve_stages)
            .chain(&self.ingest_stages)
            .chain(&self.load_stages)
            .chain([&self.build, &self.wall])
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "—".to_string(),
    }
}

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:+.1}%"),
        None => "—".to_string(),
    }
}

/// Object-field lookup on a loose JSON tree.
fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// Numeric-field extraction (integers coerce to f64).
fn get_f64(v: &Value, key: &str) -> Option<f64> {
    match get(v, key)? {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// `run.stage_seconds` as `(name, seconds)` pairs; tolerates the field
/// missing entirely (empty vec).
fn stage_seconds(record: &Value) -> Vec<(String, f64)> {
    let Some(run) = get(record, "run") else {
        return Vec::new();
    };
    let Some(Value::Array(items)) = get(run, "stage_seconds") else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|pair| {
            let pair = pair.as_array()?;
            let name = pair.first()?.as_str()?.to_string();
            let secs = match pair.get(1)? {
                Value::Float(f) => *f,
                Value::UInt(u) => *u as f64,
                Value::Int(i) => *i as f64,
                _ => return None,
            };
            Some((name, secs))
        })
        .collect()
}

/// Compare two parsed bench records stage by stage. Stages present in
/// either record appear in the output (baseline order first, then
/// candidate-only stages), so renamed or added stages are visible
/// rather than silently dropped.
pub fn diff_records(baseline: &Value, candidate: &Value) -> BenchDiff {
    let base_stages = stage_seconds(baseline);
    let cand_stages = stage_seconds(candidate);

    let mut names: Vec<String> = base_stages.iter().map(|(n, _)| n.clone()).collect();
    for (n, _) in &cand_stages {
        if !names.iter().any(|have| have == n) {
            names.push(n.clone());
        }
    }
    let lookup = |stages: &[(String, f64)], name: &str| {
        stages.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    };
    let stages = names
        .into_iter()
        .map(|name| StageDiff {
            base: lookup(&base_stages, &name),
            cand: lookup(&cand_stages, &name),
            name,
        })
        .collect();

    // Schema-3 build breakdown: top-level fields, present only in
    // newer records. A field missing from both sides (two old records)
    // contributes no row at all.
    let build_stages = [
        "world_seconds",
        "index_build_seconds",
        "index_write_seconds",
        "index_load_seconds",
    ]
    .iter()
    .filter_map(|name| {
        let base = get_f64(baseline, name);
        let cand = get_f64(candidate, name);
        (base.is_some() || cand.is_some()).then(|| StageDiff {
            name: name.to_string(),
            base,
            cand,
        })
    })
    .collect();

    // Serve records (`qgx --bench-out`): nested under `serve` /
    // `serve.latency`. Rows appear only when either side has them.
    let serve_stages = [
        ("serve_total_seconds", &["serve", "total_seconds"][..]),
        ("serve_qps", &["serve", "qps"][..]),
        ("serve_p50_us", &["serve", "latency", "p50_us"][..]),
        ("serve_p99_us", &["serve", "latency", "p99_us"][..]),
        // Schema-5 expansion-cache counters; older serve records simply
        // lack these paths and contribute no rows.
        ("serve_cache_hits", &["serve", "cache_hits"][..]),
        ("serve_cache_hit_rate", &["serve", "cache_hit_rate"][..]),
        // Schema-6 networked-serving counters: overload shedding,
        // deadline refusals, and the per-connection tail.
        ("serve_shed", &["serve", "shed"][..]),
        ("serve_timeouts", &["serve", "timeouts"][..]),
        (
            "serve_conn_p99_us",
            &["serve", "conn_latency", "p99_us"][..],
        ),
    ]
    .iter()
    .filter_map(|(name, path)| {
        let base = get_path_f64(baseline, path);
        let cand = get_path_f64(candidate, path);
        (base.is_some() || cand.is_some()).then(|| StageDiff {
            name: name.to_string(),
            base,
            cand,
        })
    })
    .collect();

    // Schema-8 ingest records: nested under `ingest`. Rows appear only
    // when either side has them, so older baselines diff tolerantly.
    let ingest_stages = [
        ("ingest_seconds", &["ingest", "ingest_seconds"][..]),
        ("ingest_docs_per_second", &["ingest", "docs_per_second"][..]),
        (
            "ingest_peak_buffer_bytes",
            &["ingest", "peak_buffer_bytes"][..],
        ),
        (
            "ingest_compaction_seconds",
            &["ingest", "compaction_seconds"][..],
        ),
        ("ingest_swap_pause_us", &["ingest", "swap_pause_us"][..]),
        (
            "ingest_segments_after",
            &["ingest", "segments_after_compaction"][..],
        ),
    ]
    .iter()
    .filter_map(|(name, path)| {
        let base = get_path_f64(baseline, path);
        let cand = get_path_f64(candidate, path);
        (base.is_some() || cand.is_some()).then(|| StageDiff {
            name: name.to_string(),
            base,
            cand,
        })
    })
    .collect();

    // Schema-9 load records: the ladder's last-step headline numbers,
    // lifted to fixed paths under `load`. Rows appear only when either
    // side has them, so run/serve/ingest baselines diff tolerantly.
    let load_stages = [
        ("load_offered_rps", &["load", "offered_rps"][..]),
        ("load_goodput_qps", &["load", "goodput_qps"][..]),
        ("load_p50_us", &["load", "p50_us"][..]),
        ("load_p99_us", &["load", "p99_us"][..]),
        ("load_p999_us", &["load", "p999_us"][..]),
    ]
    .iter()
    .filter_map(|(name, path)| {
        let base = get_path_f64(baseline, path);
        let cand = get_path_f64(candidate, path);
        (base.is_some() || cand.is_some()).then(|| StageDiff {
            name: name.to_string(),
            base,
            cand,
        })
    })
    .collect();

    let run_f64 = |record: &Value, key: &str| get(record, "run").and_then(|r| get_f64(r, key));
    BenchDiff {
        wall: StageDiff {
            name: "wall_seconds".to_string(),
            base: run_f64(baseline, "wall_seconds"),
            cand: run_f64(candidate, "wall_seconds"),
        },
        build: StageDiff {
            name: "build_seconds".to_string(),
            base: get_f64(baseline, "build_seconds"),
            cand: get_f64(candidate, "build_seconds"),
        },
        build_stages,
        serve_stages,
        ingest_stages,
        load_stages,
        stages,
    }
}

/// Numeric lookup through a nested object path.
fn get_path_f64(v: &Value, path: &[&str]) -> Option<f64> {
    let (last, parents) = path.split_last()?;
    let mut node = v;
    for key in parents {
        node = get(node, key)?;
    }
    get_f64(node, last)
}

/// Render a markdown table summarizing a set of committed bench
/// records — the `repro_bench_diff --history` view of the perf
/// trajectory. One row per record, in the order given; columns are
/// schema-tolerant: any field a record lacks (older schemas, or a
/// pipeline-run record's serve columns and vice versa) renders as a
/// dash rather than an error, so seed, stress, and serve records of
/// any vintage sit in one table.
pub fn render_history(records: &[(String, Value)]) -> String {
    let mut out = String::new();
    out.push_str(
        "| record | schema | kind | queries | topics | build (s) | wall (s) | \
         ground truth (s) | p50 (µs) | p99 (µs) | QPS |\n",
    );
    out.push_str("|---|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for (name, record) in records {
        let kind = get(record, "kind")
            .and_then(Value::as_str)
            .unwrap_or("run")
            .to_string();
        let stage = |target: &str| {
            stage_seconds(record)
                .into_iter()
                .find(|(n, _)| n == target)
                .map(|(_, s)| s)
        };
        let fmt_count = |key: &str| {
            get_f64(record, key)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".to_string())
        };
        out.push_str(&format!(
            "| `{name}` | {} | {kind} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            fmt_count("schema"),
            fmt_count("num_queries"),
            fmt_count("num_topics"),
            fmt_opt(get_f64(record, "build_seconds")),
            fmt_opt(get_path_f64(record, &["run", "wall_seconds"])),
            fmt_opt(stage("ground_truth")),
            // Load records (schema 9) report the same columns from
            // their ladder's last step; goodput stands in for QPS.
            fmt_opt(
                get_path_f64(record, &["serve", "latency", "p50_us"])
                    .or_else(|| get_path_f64(record, &["load", "p50_us"])),
            ),
            fmt_opt(
                get_path_f64(record, &["serve", "latency", "p99_us"])
                    .or_else(|| get_path_f64(record, &["load", "p99_us"])),
            ),
            fmt_opt(
                get_path_f64(record, &["serve", "qps"])
                    .or_else(|| get_path_f64(record, &["load", "goodput_qps"])),
            ),
        ));
    }
    out
}

/// Parse a bench record from JSON text.
pub fn parse_record(text: &str) -> Result<Value, String> {
    serde_json::from_str::<Value>(text).map_err(|e| format!("bad bench record: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(wall: f64, gt: f64) -> Value {
        parse_record(&format!(
            r#"{{"schema":1,"build_seconds":0.04,"run":{{"wall_seconds":{wall},
                "stage_seconds":[["link",0.02],["ground_truth",{gt}]]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn computes_absolute_and_percent_deltas() {
        let diff = diff_records(&record(0.32, 0.29), &record(0.16, 0.07));
        let gt = diff
            .stages
            .iter()
            .find(|d| d.name == "ground_truth")
            .unwrap();
        assert!((gt.abs_delta().unwrap() - (0.07 - 0.29)).abs() < 1e-12);
        assert!((gt.pct_delta().unwrap() - (100.0 * (0.07 - 0.29) / 0.29)).abs() < 1e-9);
        assert!((diff.wall_regression_pct() - (-50.0)).abs() < 1e-9);
    }

    #[test]
    fn regression_is_positive_percent() {
        let diff = diff_records(&record(0.10, 0.05), &record(0.15, 0.08));
        assert!((diff.wall_regression_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn missing_stages_render_as_dashes_not_errors() {
        let old = parse_record(
            r#"{"build_seconds":0.1,"run":{"wall_seconds":1.0,
                "stage_seconds":[["link",0.5],["legacy_stage",0.5]]}}"#,
        )
        .unwrap();
        let new = record(0.8, 0.3);
        let diff = diff_records(&old, &new);
        let legacy = diff
            .stages
            .iter()
            .find(|d| d.name == "legacy_stage")
            .unwrap();
        assert_eq!(legacy.cand, None);
        assert_eq!(legacy.pct_delta(), None);
        let gt = diff
            .stages
            .iter()
            .find(|d| d.name == "ground_truth")
            .unwrap();
        assert_eq!(gt.base, None);
        let text = diff.render_text();
        assert!(text.contains('—'));
    }

    #[test]
    fn schema_mismatch_is_tolerated() {
        // A record missing `run` entirely still diffs (all-missing rows).
        let hollow = parse_record(r#"{"schema":99}"#).unwrap();
        let diff = diff_records(&hollow, &record(0.2, 0.1));
        assert_eq!(diff.wall.base, None);
        assert_eq!(
            diff.wall_regression_pct(),
            0.0,
            "no gate without a baseline"
        );
    }

    #[test]
    fn markdown_table_shape() {
        let diff = diff_records(&record(0.32, 0.29), &record(0.16, 0.07));
        let md = diff.render_markdown();
        assert!(md.starts_with("| stage |"));
        assert!(md.contains("| `ground_truth` |"));
        assert!(md.contains("| `wall_seconds` |"));
        // Header + separator + link + ground_truth + build + wall.
        assert_eq!(md.lines().count(), 6);
    }

    #[test]
    fn old_records_have_no_build_breakdown_rows() {
        let diff = diff_records(&record(0.32, 0.29), &record(0.16, 0.07));
        assert!(
            diff.build_stages.is_empty(),
            "schema ≤ 2 records must not grow phantom rows"
        );
    }

    #[test]
    fn schema3_build_breakdown_diffs_and_tolerates_mixed_schemas() {
        let new = parse_record(
            r#"{"schema":3,"build_seconds":0.2,"world_seconds":0.05,
                "index_build_seconds":0.1,"index_write_seconds":0.03,
                "index_load_seconds":0.0,
                "run":{"wall_seconds":0.1,"stage_seconds":[["link",0.05]]}}"#,
        )
        .unwrap();
        // Old baseline (schema 1, no breakdown) vs new candidate: rows
        // appear with dashes on the baseline side, never an error.
        let old = record(0.3, 0.2);
        let diff = diff_records(&old, &new);
        assert_eq!(diff.build_stages.len(), 4);
        let ib = diff
            .build_stages
            .iter()
            .find(|d| d.name == "index_build_seconds")
            .unwrap();
        assert_eq!(ib.base, None);
        assert_eq!(ib.cand, Some(0.1));
        assert_eq!(ib.pct_delta(), None, "half-missing row cannot gate");
        // New vs new: real deltas.
        let loaded = parse_record(
            r#"{"schema":3,"build_seconds":0.07,"world_seconds":0.05,
                "index_build_seconds":0.0,"index_write_seconds":0.0,
                "index_load_seconds":0.02,
                "run":{"wall_seconds":0.1,"stage_seconds":[["link",0.05]]}}"#,
        )
        .unwrap();
        let diff = diff_records(&new, &loaded);
        let il = diff
            .build_stages
            .iter()
            .find(|d| d.name == "index_load_seconds")
            .unwrap();
        assert_eq!(il.abs_delta(), Some(0.02));
        let text = diff.render_text();
        assert!(text.contains("index_load_seconds"));
        assert!(diff.render_markdown().contains("| `index_build_seconds` |"));
    }

    fn serve_record(p50: f64, qps: f64) -> Value {
        parse_record(&format!(
            r#"{{"schema":3,"kind":"serve","build_seconds":0.02,
                "num_queries":50,"num_topics":50,
                "serve":{{"total_seconds":3.2,"qps":{qps},
                    "latency":{{"p50_us":{p50},"p90_us":3900.0,"p99_us":5000.0}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn serve_records_diff_latency_and_qps() {
        let diff = diff_records(&serve_record(3000.0, 300.0), &serve_record(1500.0, 600.0));
        assert_eq!(diff.serve_stages.len(), 4);
        let p50 = diff
            .serve_stages
            .iter()
            .find(|d| d.name == "serve_p50_us")
            .unwrap();
        assert!((p50.pct_delta().unwrap() + 50.0).abs() < 1e-9);
        let qps = diff
            .serve_stages
            .iter()
            .find(|d| d.name == "serve_qps")
            .unwrap();
        assert_eq!(qps.abs_delta(), Some(300.0));
        assert!(diff.render_markdown().contains("| `serve_p99_us` |"));
        // Serve records carry no pipeline wall clock — the gate stays
        // silent rather than misfiring.
        assert_eq!(diff.wall_regression_pct(), 0.0);
    }

    #[test]
    fn schema5_cache_counters_diff_and_tolerate_old_serve_records() {
        let cached = parse_record(
            r#"{"schema":5,"kind":"serve","build_seconds":0.02,
                "num_queries":50,"num_topics":50,
                "serve":{"total_seconds":1.6,"qps":600.0,
                    "cache_hits":450,"cache_lookups":500,"cache_hit_rate":0.9,
                    "latency":{"p50_us":900.0,"p90_us":2000.0,"p99_us":2500.0}}}"#,
        )
        .unwrap();
        // Old serve baseline (schema ≤ 4, no cache fields) vs cached
        // candidate: cache rows appear with a dashed baseline side.
        let diff = diff_records(&serve_record(3000.0, 300.0), &cached);
        let rate = diff
            .serve_stages
            .iter()
            .find(|d| d.name == "serve_cache_hit_rate")
            .unwrap();
        assert_eq!(rate.base, None);
        assert_eq!(rate.cand, Some(0.9));
        assert_eq!(rate.pct_delta(), None, "half-missing row cannot gate");
        // Cached vs cached: real deltas, rendered in both formats.
        let diff = diff_records(&cached, &cached);
        let hits = diff
            .serve_stages
            .iter()
            .find(|d| d.name == "serve_cache_hits")
            .unwrap();
        assert_eq!(hits.abs_delta(), Some(0.0));
        assert!(diff
            .render_markdown()
            .contains("| `serve_cache_hit_rate` |"));
        // Two pre-cache serve records grow no phantom cache rows.
        let old = diff_records(&serve_record(3000.0, 300.0), &serve_record(1500.0, 600.0));
        assert!(!old.serve_stages.iter().any(|d| d.name.contains("cache")));
    }

    #[test]
    fn run_records_have_no_serve_rows() {
        let diff = diff_records(&record(0.32, 0.29), &record(0.16, 0.07));
        assert!(diff.serve_stages.is_empty());
        assert!(diff.ingest_stages.is_empty());
    }

    fn ingest_record(dps: f64, compaction: f64) -> Value {
        parse_record(&format!(
            r#"{{"schema":8,"kind":"ingest","num_queries":6,"num_topics":60,
                "ingest":{{"docs_ingested":237434,"batches":12,
                    "ingest_seconds":20.0,"docs_per_second":{dps},
                    "peak_buffer_bytes":70000,
                    "segments_before_compaction":12,
                    "segments_after_compaction":4,
                    "compaction_seconds":{compaction},
                    "swap_pause_us":150.0,"generation":13}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn schema8_ingest_records_diff_and_tolerate_old_baselines() {
        // Old run baseline vs ingest candidate: ingest rows appear with
        // a dashed baseline side, never an error.
        let diff = diff_records(&record(0.32, 0.29), &ingest_record(11_000.0, 2.5));
        let dps = diff
            .ingest_stages
            .iter()
            .find(|d| d.name == "ingest_docs_per_second")
            .unwrap();
        assert_eq!(dps.base, None);
        assert_eq!(dps.cand, Some(11_000.0));
        assert_eq!(dps.pct_delta(), None, "half-missing row cannot gate");
        // Ingest vs ingest: real deltas, rendered in both formats.
        let diff = diff_records(&ingest_record(10_000.0, 3.0), &ingest_record(12_000.0, 2.0));
        let dps = diff
            .ingest_stages
            .iter()
            .find(|d| d.name == "ingest_docs_per_second")
            .unwrap();
        assert!((dps.pct_delta().unwrap() - 20.0).abs() < 1e-9);
        let comp = diff
            .ingest_stages
            .iter()
            .find(|d| d.name == "ingest_compaction_seconds")
            .unwrap();
        assert_eq!(comp.abs_delta(), Some(-1.0));
        assert!(diff
            .render_markdown()
            .contains("| `ingest_swap_pause_us` |"));
        // Ingest records carry no pipeline wall clock — no false gate.
        assert_eq!(diff.wall_regression_pct(), 0.0);
        // The history table renders the record kind tolerantly.
        let md = render_history(&[(
            "BENCH_ingest.json".to_string(),
            ingest_record(11_000.0, 2.5),
        )]);
        assert!(md.contains("ingest"));
        assert!(md.contains('8'));
    }

    fn load_record(p99: f64, goodput: f64) -> Value {
        parse_record(&format!(
            r#"{{"schema":9,"kind":"load","num_queries":32,"num_topics":60,
                "load":{{"conns":4,"workers":4,"zipf":0.0,"seed":12648430,
                    "warmup_passes":1,"latency_mode":"histogram",
                    "offered_rps":400.0,"goodput_qps":{goodput},
                    "p50_us":1200.0,"p99_us":{p99},"p999_us":9000.0,
                    "steps":[]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn schema9_load_records_diff_and_gate_on_p99() {
        // Old run baseline vs load candidate: load rows appear with a
        // dashed baseline side and the gate stays silent.
        let diff = diff_records(&record(0.32, 0.29), &load_record(5000.0, 380.0));
        let p99 = diff
            .load_stages
            .iter()
            .find(|d| d.name == "load_p99_us")
            .unwrap();
        assert_eq!(p99.base, None);
        assert_eq!(p99.cand, Some(5000.0));
        assert_eq!(
            diff.load_p99_regression_pct(),
            0.0,
            "no SLO gate without a load baseline"
        );
        // Load vs load: real deltas drive the SLO gate.
        let diff = diff_records(&load_record(4000.0, 390.0), &load_record(5000.0, 380.0));
        assert_eq!(diff.load_stages.len(), 5);
        assert!((diff.load_p99_regression_pct() - 25.0).abs() < 1e-9);
        let goodput = diff
            .load_stages
            .iter()
            .find(|d| d.name == "load_goodput_qps")
            .unwrap();
        assert_eq!(goodput.abs_delta(), Some(-10.0));
        assert!(diff.render_markdown().contains("| `load_p99_us` |"));
        // Run/serve records grow no phantom load rows.
        let old = diff_records(&record(0.32, 0.29), &serve_record(3000.0, 300.0));
        assert!(old.load_stages.is_empty());
        // The history table renders load records in the shared columns.
        let md = render_history(&[("BENCH_load.json".to_string(), load_record(5000.0, 380.0))]);
        assert!(md.contains("load"));
        assert!(md.contains("5000.0000"), "p99 column from load path");
        assert!(md.contains("380.0000"), "QPS column from goodput");
    }

    #[test]
    fn mixed_run_and_serve_records_diff_tolerantly() {
        let diff = diff_records(&record(0.32, 0.29), &serve_record(3000.0, 300.0));
        let p50 = diff
            .serve_stages
            .iter()
            .find(|d| d.name == "serve_p50_us")
            .unwrap();
        assert_eq!(p50.base, None);
        assert_eq!(p50.cand, Some(3000.0));
        assert_eq!(p50.pct_delta(), None, "half-missing row cannot gate");
    }

    #[test]
    fn history_table_renders_all_record_kinds() {
        let entries = vec![
            ("BENCH_seed.json".to_string(), record(0.32, 0.29)),
            ("BENCH_serve.json".to_string(), serve_record(3000.0, 310.0)),
            (
                "hollow.json".to_string(),
                parse_record(r#"{"schema":99}"#).unwrap(),
            ),
        ];
        let md = render_history(&entries);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 2 + entries.len(), "header + separator + rows");
        assert!(lines[0].starts_with("| record | schema | kind |"));
        // The run record has wall + ground-truth columns, dashes for serve.
        assert!(lines[2].contains("`BENCH_seed.json`"));
        assert!(lines[2].contains("run"));
        assert!(lines[2].contains("0.2900"));
        // The serve record has latency/QPS columns, dashes for wall.
        assert!(lines[3].contains("`BENCH_serve.json`"));
        assert!(lines[3].contains("serve"));
        assert!(lines[3].contains("3000.0000"));
        assert!(lines[3].contains("310.0000"));
        // A hollow record renders as dashes, never an error.
        assert!(lines[4].contains("`hollow.json`"));
        assert!(lines[4].contains("—"));
    }

    #[test]
    fn zero_baseline_has_no_percentage() {
        let d = StageDiff {
            name: "x".into(),
            base: Some(0.0),
            cand: Some(0.5),
        };
        assert_eq!(d.pct_delta(), None);
        assert_eq!(d.abs_delta(), Some(0.5));
    }
}
