//! Ablation: compare query-expansion engines end to end — the paper's
//! conclusions operationalized (DESIGN.md §5).
//!
//! Engines:
//! * `none` — the unexpanded keyword query;
//! * `direct-links` — link-neighbourhood features (the related-work
//!   strategy of [1, 2, 3] in the paper);
//! * `redirects` — redirect-title features (the paper's §4 future-work
//!   idea);
//! * `cycles` — the paper's prescription: dense cycles with a ≈30 %
//!   category ratio;
//! * `cycles-nofilter` — cycles without the category-ratio band, which
//!   lets Fig.-8-style category-free traps through.
//!
//! `cargo run --release -p querygraph-bench --bin repro_ablation [-- --quick]`

use querygraph_core::expansion::{
    expanded_titles, CycleExpander, CycleExpanderConfig, DirectLinkExpander, Expander,
    NoopExpander, RedirectExpander,
};
use querygraph_core::experiment::Experiment;
use querygraph_link::EntityLinker;
use querygraph_retrieval::metrics::precisions;
use querygraph_retrieval::query_lang::QueryNode;

fn main() {
    let config = querygraph_bench::config_from_args();
    eprintln!(
        "# expander ablation over {} queries",
        config.corpus.num_queries
    );
    let exp = Experiment::build(&config);
    let linker = EntityLinker::new(&exp.wiki.kb);

    let expanders: Vec<Box<dyn Expander>> = vec![
        Box::new(NoopExpander),
        Box::new(DirectLinkExpander { max_features: 8 }),
        Box::new(RedirectExpander { max_features: 8 }),
        Box::new(CycleExpander::default()),
        Box::new(CycleExpander {
            config: CycleExpanderConfig {
                category_ratio_band: (0.0, 1.0),
                ..CycleExpanderConfig::default()
            },
        }),
    ];
    let labels = [
        "none",
        "direct-links",
        "redirects",
        "cycles",
        "cycles-nofilter",
    ];

    println!("Expander ablation — mean precision (top-1 top-5 top-10 top-15)");
    for (expander, label) in expanders.iter().zip(labels) {
        let mut sums = [0.0f64; 4];
        for query in exp.corpus.queries.iter() {
            let lqk = linker.link_articles(&query.keywords);
            let features = expander.expand(&exp.wiki.kb, &lqk);
            let titles = expanded_titles(&exp.wiki.kb, &lqk, &features);
            let node = QueryNode::phrases_of_titles(&titles);
            let hits = exp.engine.search(&node, 15);
            let relevant: Vec<u32> = query.relevant.iter().map(|d| d.0).collect();
            let p = precisions(&hits, &relevant);
            for i in 0..4 {
                sums[i] += p[i];
            }
        }
        let n = exp.corpus.queries.len() as f64;
        println!(
            "  {label:<16} [{:.3} {:.3} {:.3} {:.3}]",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n
        );
    }
}
