//! Compare two `BENCH_seed.json` records stage by stage — the ROADMAP's
//! bench-trajectory diff tool and the CI regression gate.
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin repro_bench_diff -- \
//!     <baseline.json> <candidate.json> [--fail-over <pct>] \
//!     [--fail-p99-over <pct>] [--markdown]
//! cargo run --release -p querygraph-bench --bin repro_bench_diff -- \
//!     --history <record.json>...
//! ```
//!
//! Prints absolute and percent deltas per stage plus `build_seconds`
//! and `wall_seconds`. With `--fail-over <pct>`, exits non-zero when
//! the candidate's pipeline `wall_seconds` regressed by more than
//! `<pct>` percent over the baseline — the CI job's failure condition.
//! With `--fail-p99-over <pct>`, exits non-zero when a schema-9 load
//! record's `load.p99_us` regressed past the threshold — the
//! `load-smoke` SLO gate. `--markdown` emits a GitHub-flavored table
//! for `$GITHUB_STEP_SUMMARY`.
//!
//! With `--history`, every positional path is a committed bench record
//! (`BENCH_seed.json`, `BENCH_stress.json`, `BENCH_serve.json`, …) and
//! the output is one markdown table summarizing the whole trajectory —
//! schema-tolerant, so pipeline-run and `qgx` serve records of any
//! vintage share the table (missing fields render as dashes).

use querygraph_bench::bench_diff::{diff_records, parse_record, render_history};

fn usage() -> ! {
    eprintln!(
        "usage: repro_bench_diff <baseline.json> <candidate.json> \
         [--fail-over <pct>] [--fail-p99-over <pct>] [--markdown]\n\
         \x20      repro_bench_diff --history <record.json>..."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut fail_over: Option<f64> = None;
    let mut fail_p99_over: Option<f64> = None;
    let mut markdown = false;
    let mut history = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fail-over" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(pct)) => fail_over = Some(pct),
                _ => usage(),
            },
            "--fail-p99-over" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(pct)) => fail_p99_over = Some(pct),
                _ => usage(),
            },
            "--markdown" => markdown = true,
            "--history" => history = true,
            flag if flag.starts_with("--") => usage(),
            path => paths.push(path),
        }
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |path: &str| {
        parse_record(&read(path)).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };

    if history {
        // `--history` is a different mode, not a modifier: combining it
        // with the two-record gate flags would silently skip the gate.
        if paths.is_empty() || fail_over.is_some() || fail_p99_over.is_some() || markdown {
            usage();
        }
        let records: Vec<(String, _)> = paths
            .iter()
            .map(|path| (path.to_string(), parse(path)))
            .collect();
        println!("### Bench trajectory\n");
        print!("{}", render_history(&records));
        return;
    }

    let [baseline_path, candidate_path] = paths.as_slice() else {
        usage()
    };
    let baseline = parse(baseline_path);
    let candidate = parse(candidate_path);

    let diff = diff_records(&baseline, &candidate);
    if markdown {
        println!("### Bench diff: `{baseline_path}` → `{candidate_path}`\n");
        print!("{}", diff.render_markdown());
    } else {
        eprintln!("# baseline: {baseline_path}");
        eprintln!("# candidate: {candidate_path}");
        print!("{}", diff.render_text());
    }

    let regression = diff.wall_regression_pct();
    if let Some(threshold) = fail_over {
        if regression > threshold {
            let msg =
                format!("wall_seconds regressed {regression:+.1}% (threshold {threshold:+.1}%)");
            if markdown {
                println!("\n**FAIL** — {msg}");
            }
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
        let msg =
            format!("wall_seconds change {regression:+.1}% within threshold {threshold:+.1}%");
        if markdown {
            println!("\n**OK** — {msg}");
        }
        eprintln!("OK: {msg}");
    }

    // The load-smoke SLO gate: tail-latency regression on a schema-9
    // load record. Missing fields (non-load records) read as 0% and
    // pass, so the flag is safe to leave on in mixed CI matrices.
    let p99_regression = diff.load_p99_regression_pct();
    if let Some(threshold) = fail_p99_over {
        if p99_regression > threshold {
            let msg = format!(
                "load p99_us regressed {p99_regression:+.1}% (SLO threshold {threshold:+.1}%)"
            );
            if markdown {
                println!("\n**FAIL** — {msg}");
            }
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
        let msg = format!(
            "load p99_us change {p99_regression:+.1}% within SLO threshold {threshold:+.1}%"
        );
        if markdown {
            println!("\n**OK** — {msg}");
        }
        eprintln!("OK: {msg}");
    }
}
