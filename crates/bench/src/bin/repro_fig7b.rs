//! Regenerate Fig. 7b: average density of extra edges of cycles by
//! cycle length (the paper's M(C) formula).
//!
//! `cargo run --release -p querygraph-bench --bin repro_fig7b [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.fig7b().render());
}
