//! Regenerate Fig. 7a: average category ratio of cycles by cycle
//! length.
//!
//! `cargo run --release -p querygraph-bench --bin repro_fig7a [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.fig7a().render());
}
