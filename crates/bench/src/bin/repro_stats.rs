//! Regenerate the §3/§4 scalar statistics: mean TPR of the largest
//! components (paper ≈ 0.3), link reciprocity (paper 11.47 %), average
//! query-graph size (paper 208.22 nodes) and per-query analysis time
//! (paper ≈ 6 minutes on their graph database).
//!
//! `cargo run --release -p querygraph-bench --bin repro_stats [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.scalar_stats().render());
    if let Some((p, s)) = report.mean_correlation() {
        println!("§4 article frequency↔goodness correlation: pearson {p:.3}, spearman {s:.3}");
    }
}
