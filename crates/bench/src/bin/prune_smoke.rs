//! `prune_smoke` — the block-max pruning gate.
//!
//! Builds (or loads) a world, assembles a retrieval-heavy workload from
//! the tier's seed queries — each served both as a bag of bare keyword
//! terms and as its cycle-expanded `#combine`-of-phrases query — and
//! then enforces the two halves of the pruning contract:
//!
//! 1. **Rank-equivalence**: for every workload query,
//!    `SearchMode::Pruned` must return the same documents in the same
//!    order as `SearchMode::Exact`, with scores within 1e-9.
//! 2. **Speedup**: over the whole workload (min-of-`--reps` timing for
//!    each mode), pruned search must be at least `--min-speedup` times
//!    faster than exact (default 1.5×, the CI gate; pass `0` to report
//!    without gating).
//!
//! Any violation prints the offending query and exits nonzero, so CI
//! can run this binary directly:
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin prune_smoke -- \
//!     [--tiny | --quick | --stress [--quick]] [--index-cache <dir>] \
//!     [--shards <n>] [--mmap] [--top-k <k>] [--reps <n>] \
//!     [--min-speedup <x>]
//! ```

use querygraph_bench::{flag_f64, flag_usize, CliOptions};
use querygraph_core::service::ServingWorld;
use querygraph_retrieval::engine::SearchMode;
use querygraph_retrieval::query_lang::{parse, QueryNode};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cli = CliOptions::from_vec(&args);
    let config = cli.config();
    let top_k = flag_usize(&args, "--top-k").unwrap_or(10);
    let reps = flag_usize(&args, "--reps").unwrap_or(5).max(1);
    let min_speedup = flag_f64(&args, "--min-speedup").unwrap_or(1.5);

    let (world, corpus) = ServingWorld::open_with_options(
        &config,
        cli.index_cache.as_deref(),
        querygraph_retrieval::lm::LmParams::default(),
        &cli.world_options(),
    );
    eprintln!(
        "# prune_smoke: {} docs, {} shard(s), top-k {top_k}, {} seed queries",
        world.engine.num_docs(),
        world.engine.shard_count(),
        corpus.queries.queries.len(),
    );

    // The workload: every seed query as bare terms (broad candidate
    // sets — where pruning earns its keep) and as its cycle-expanded
    // phrase query (the serving path's actual shape).
    let expander = world.expander();
    let mut queries: Vec<QueryNode> = Vec::new();
    for q in &corpus.queries.queries {
        if let Ok(node) = parse(&format!("#combine({})", q.keywords)) {
            queries.push(node);
        }
        if let Ok(response) = expander.expand_text(&q.keywords) {
            queries.push(parse(&response.expanded_query).expect("expander emits valid queries"));
        }
    }
    assert!(!queries.is_empty(), "empty workload");

    // Contract half 1: rank-equivalence on every query.
    let mut equivalent = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let exact = world.engine.search_with(q, top_k, SearchMode::Exact);
        let pruned = world.engine.search_with(q, top_k, SearchMode::Pruned);
        let docs = |hits: &[querygraph_retrieval::engine::SearchHit]| {
            hits.iter().map(|h| h.doc).collect::<Vec<_>>()
        };
        if docs(&exact) != docs(&pruned) {
            eprintln!(
                "FAIL: query {i} ({q}) ranks differ: exact {:?} vs pruned {:?}",
                docs(&exact),
                docs(&pruned)
            );
            std::process::exit(1);
        }
        for (a, b) in exact.iter().zip(&pruned) {
            if (a.score - b.score).abs() > 1e-9 {
                eprintln!(
                    "FAIL: query {i} ({q}) doc {} score drift: {} vs {}",
                    a.doc, a.score, b.score
                );
                std::process::exit(1);
            }
        }
        equivalent += 1;
    }
    println!(
        "rank-equivalence: {equivalent}/{} queries identical",
        queries.len()
    );

    // Contract half 2: the speedup gate. Min-of-reps on each side
    // absorbs scheduler noise; one untimed warmup pass fills the
    // phrase cache so both modes race over identical warm state.
    let run_all = |mode: SearchMode| {
        for q in &queries {
            black_box(world.engine.search_with(q, top_k, mode));
        }
    };
    run_all(SearchMode::Exact);
    let time = |mode: SearchMode| {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                run_all(mode);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let exact_s = time(SearchMode::Exact);
    let pruned_s = time(SearchMode::Pruned);
    let speedup = exact_s / pruned_s.max(1e-12);
    println!(
        "exact {:.1}ms  pruned {:.1}ms  speedup {speedup:.2}x (min of {reps} reps, \
         {} queries, k={top_k})",
        exact_s * 1e3,
        pruned_s * 1e3,
        queries.len(),
    );
    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("FAIL: pruned speedup {speedup:.2}x below the {min_speedup:.2}x gate");
        std::process::exit(1);
    }
    println!("ok");
}
