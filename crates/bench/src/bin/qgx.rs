//! `qgx` — the long-lived query-expansion server.
//!
//! Loads (or builds and persists) a world once, then serves ad-hoc
//! queries through the `core::service` facade in a read–expand–respond
//! loop, reporting per-query latency percentiles and QPS at the end —
//! the paper's technique as the online component it was designed to be,
//! instead of a batch reproduction run.
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin qgx -- \
//!     [--tiny | --quick | --stress [--quick]] [--index-cache <dir>] \
//!     [--shards <n>] [--shard-threads <n>] [--mmap] \
//!     [--queries <file>] [--seed-queries] [--repeat <n>] [--zipf <s>] \
//!     [--strategy cycles|links|redirects|none] [--max-features <n>] \
//!     [--top-k <k>] [--threads <n>] [--prune] [--expansion-cache <n>] \
//!     [--json] [--bench-out <path>]
//! ```
//!
//! * Without `--queries`/`--seed-queries`, queries are read from stdin,
//!   one per line, and answered as they arrive (the long-lived loop;
//!   `#`-prefixed and empty lines are skipped).
//! * `--seed-queries` serves the tier's generated query set —
//!   the reproducible workload the committed `BENCH_serve.json` uses.
//! * `--repeat <n>` loops a file/seed workload n times (latency
//!   sampling); `--threads <n>` serves each repetition across workers
//!   on the same deterministic work-stealing runner `expand_batch`
//!   uses, timing every request inside its worker so the archived
//!   percentiles stay real per-request service times.
//! * `--json` emits one `ExpansionResponse` JSON object per line on
//!   stdout; the default is a compact human-readable line. Typed
//!   per-query errors (unlinkable text, empty line) are reported and
//!   served on — they never kill the loop.
//! * `--shards <n>` serves through the doc-partitioned `ShardedEngine`
//!   and the segmented artifact layout (manifest + per-shard segments,
//!   loaded in parallel); expansion output is byte-identical to the
//!   monolithic engine at any shard count. `--shard-threads <n>` fans
//!   each query's per-shard retrieval across workers; `--mmap` maps
//!   artifact bytes instead of reading them (read fallback on error).
//! * `--zipf <s>` reshapes a `--queries`/`--seed-queries` workload
//!   into a seeded head-heavy one: each repetition serves the same
//!   number of requests, drawn Zipf(s)-distributed over the pool
//!   (rank 1 = first query), deterministically for the tier's seeds —
//!   the repeat-heavy traffic a serving cache exists for.
//! * `--prune` retrieves with block-max top-k pruning (`SearchMode::
//!   Pruned`): rank-equivalent to exact scoring — same documents, same
//!   order, scores within 1e-9 — but skips candidates whose score
//!   bound cannot reach the current top-k floor.
//! * `--expansion-cache <n>` memoizes up to n complete expansion
//!   responses (single-flight, failures never cached); hits and the
//!   hit rate land in the archived record and the closing stderr line.
//! * `--bench-out <path>` archives a `ServeRecord` (p50/p90/p99 µs,
//!   QPS + per-thread QPS, shard count and per-shard load seconds,
//!   search mode, expansion-cache hit counters, build-vs-load
//!   provenance) diffable by `repro_bench_diff`.
//!
//! With `--index-cache`, the first run builds and persists the index
//! artifact and later runs load it (`index_source: "loaded"` in the
//! record) — serving startup then costs world synthesis plus one
//! artifact read instead of a full indexing pass.

use querygraph_bench::{
    flag_f64, flag_operand, flag_usize, CliOptions, LatencySummary, ServeRecord, ServeSummary,
    ZipfSampler,
};
use querygraph_core::expcache::ExpansionCache;
use querygraph_core::service::{
    ExpansionRequest, ExpansionResponse, ExpansionStrategy, QueryExpander, ServiceError,
    ServingWorld,
};
use querygraph_retrieval::engine::SearchMode;
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

/// Flags beyond the shared repro CLI (`--bench-out` rides in
/// [`CliOptions`]; unlike the repro binaries qgx writes no record
/// unless it was given).
struct ServeOptions {
    queries_file: Option<String>,
    seed_queries: bool,
    repeat: usize,
    zipf: Option<f64>,
    strategy: ExpansionStrategy,
    max_features: Option<usize>,
    top_k: usize,
    threads: usize,
    shard_threads: usize,
    prune: bool,
    expansion_cache: Option<usize>,
    json: bool,
}

/// Every flag qgx understands, with whether it consumes an operand.
/// Anything else starting with `--` is rejected — a typo'd flag must
/// not silently fall back to a different workload (e.g. blocking on
/// stdin in CI).
const KNOWN_FLAGS: [(&str, bool); 19] = [
    ("--tiny", false),
    ("--quick", false),
    ("--stress", false),
    ("--index-cache", true),
    ("--shards", true),
    ("--shard-threads", true),
    ("--mmap", false),
    ("--queries", true),
    ("--seed-queries", false),
    ("--repeat", true),
    ("--zipf", true),
    ("--strategy", true),
    ("--max-features", true),
    ("--top-k", true),
    ("--threads", true),
    ("--prune", false),
    ("--expansion-cache", true),
    ("--json", false),
    ("--bench-out", true),
];

/// Reject unrecognized `--flags` (operand values are skipped).
fn reject_unknown_flags(args: &[String]) {
    let mut i = 1; // skip argv[0]
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            match KNOWN_FLAGS.iter().find(|(name, _)| name == arg) {
                Some((_, takes_operand)) => i += 1 + usize::from(*takes_operand),
                None => {
                    eprintln!(
                        "error: unknown flag {arg} (known: {})",
                        KNOWN_FLAGS
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("error: unexpected argument {arg:?} (queries come from stdin or --queries)");
            std::process::exit(2);
        }
    }
}

impl ServeOptions {
    fn from_args(args: &[String]) -> ServeOptions {
        let strategy = match flag_operand(args, "--strategy") {
            None => ExpansionStrategy::default(),
            Some(name) => ExpansionStrategy::parse(&name).unwrap_or_else(|| {
                eprintln!("error: unknown --strategy {name:?} (cycles|links|redirects|none)");
                std::process::exit(2);
            }),
        };
        let queries_file = flag_operand(args, "--queries");
        let seed_queries = args.iter().any(|a| a == "--seed-queries");
        if queries_file.is_some() && seed_queries {
            // Two workload sources would mean silently serving one of
            // them — the failure class this CLI refuses throughout.
            eprintln!("error: --queries and --seed-queries are mutually exclusive");
            std::process::exit(2);
        }
        let zipf = flag_f64(args, "--zipf");
        if let Some(s) = zipf {
            if !(s >= 0.0 && s.is_finite()) {
                eprintln!("error: --zipf exponent must be a finite number ≥ 0, got {s}");
                std::process::exit(2);
            }
        }
        ServeOptions {
            queries_file,
            seed_queries,
            repeat: flag_usize(args, "--repeat").unwrap_or(1).max(1),
            zipf,
            strategy,
            max_features: flag_usize(args, "--max-features"),
            top_k: flag_usize(args, "--top-k").unwrap_or(0),
            threads: flag_usize(args, "--threads").unwrap_or(1).max(1),
            shard_threads: flag_usize(args, "--shard-threads").unwrap_or(1).max(1),
            prune: args.iter().any(|a| a == "--prune"),
            expansion_cache: flag_usize(args, "--expansion-cache"),
            json: args.iter().any(|a| a == "--json"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    reject_unknown_flags(&args);
    let cli = CliOptions::from_vec(&args);
    let serve = ServeOptions::from_args(&args);
    let config = cli.config();

    // World setup, paid once for the whole serving session. The open
    // path regenerates the corpus anyway (staleness check, cache-miss
    // indexing); keep it only when `--seed-queries` needs its query
    // set — a plain long-lived server lets it drop.
    let (mut world, seed_corpus) = {
        let (world, corpus) = ServingWorld::open_with_options(
            &config,
            cli.index_cache.as_deref(),
            querygraph_retrieval::lm::LmParams::default(),
            &cli.world_options(),
        );
        (world, serve.seed_queries.then_some(corpus))
    };
    let effective_shard_threads = match &mut world.engine {
        querygraph_retrieval::backend::AnyEngine::Sharded(engine) => {
            engine.set_search_threads(serve.shard_threads);
            serve.shard_threads.min(engine.shard_count()).max(1)
        }
        querygraph_retrieval::backend::AnyEngine::Mono(_) => {
            if serve.shard_threads > 1 {
                eprintln!("# qgx: --shard-threads applies to --shards workloads only");
            }
            1
        }
    };
    let search_mode = if serve.prune {
        SearchMode::Pruned
    } else {
        SearchMode::Exact
    };
    eprintln!(
        "# qgx: {} articles, index {} x{} shard(s) (world {:.3}s, build {:.3}s, load {:.3}s); \
         strategy {}, top-k {}, search {}, cache {}",
        world.wiki.kb.num_articles(),
        world.stats.index_source.name(),
        world.stats.shard_count,
        world.stats.world_seconds,
        world.stats.index_build_seconds,
        world.stats.index_load_seconds,
        serve.strategy.name(),
        serve.top_k,
        search_mode.name(),
        serve
            .expansion_cache
            .map(|n| n.to_string())
            .unwrap_or_else(|| "off".to_string()),
    );
    let mut builder = QueryExpander::builder()
        .strategy(serve.strategy.clone())
        .search_mode(search_mode);
    if let Some(max) = serve.max_features {
        builder = builder.max_features(max);
    }
    if serve.top_k > 0 {
        builder = builder.retrieve_top(serve.top_k);
    }
    // Keep our own handle on the cache so its hit counters can be
    // read after the serve loop (the expander shares the same Arc).
    let cache: Option<Arc<ExpansionCache>> = serve
        .expansion_cache
        .filter(|&n| n > 0)
        .map(|n| Arc::new(ExpansionCache::new(n)));
    if let Some(cache) = &cache {
        builder = builder.expansion_cache(cache.clone());
    }
    let expander = world.expander_from(&builder);

    let mut latencies_us: Vec<f64> = Vec::new();
    let mut served = 0usize;
    let mut failures = 0usize;
    // Size of one repetition of the served workload (for the record's
    // `num_queries`); stdin mode counts as it goes.
    let workload_queries;
    let fixed_workload = serve.seed_queries || serve.queries_file.is_some();
    if !fixed_workload && (serve.threads > 1 || serve.repeat > 1 || serve.zipf.is_some()) {
        eprintln!(
            "# qgx: --threads/--repeat/--zipf apply to --queries/--seed-queries workloads only"
        );
    }
    let t_serve = Instant::now();

    if fixed_workload {
        // Fixed workload: file or the tier's generated query set,
        // optionally repeated and optionally batched across threads.
        let workload: Vec<String> = if let Some(corpus) = &seed_corpus {
            corpus
                .queries
                .queries
                .iter()
                .map(|q| q.keywords.clone())
                .collect()
        } else {
            let path = serve.queries_file.as_deref().expect("checked above");
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        };
        if workload.is_empty() {
            eprintln!("error: empty workload");
            std::process::exit(2);
        }
        workload_queries = workload.len();
        let requests: Vec<ExpansionRequest> = workload
            .iter()
            .map(|text| ExpansionRequest::new(text.clone()))
            .collect();
        // --zipf: one seeded sampler across all repetitions, so the
        // whole served stream is a deterministic function of the
        // tier's seeds and the exponent.
        let mut zipf = serve.zipf.map(|s| {
            ZipfSampler::new(
                requests.len(),
                s,
                config.wiki.seed ^ config.corpus.seed.rotate_left(17),
            )
        });
        for _ in 0..serve.repeat {
            let sampled: Vec<ExpansionRequest>;
            let batch: &[ExpansionRequest] = match &mut zipf {
                Some(sampler) => {
                    sampled = (0..requests.len())
                        .map(|_| requests[sampler.sample()].clone())
                        .collect();
                    &sampled
                }
                None => &requests,
            };
            // The same deterministic work-stealing runner `expand_batch`
            // uses (inline on this thread at --threads 1), timing each
            // request inside its worker — the archived percentiles are
            // real per-request service times, while QPS reflects the
            // parallel wall clock.
            let timed = querygraph_core::pipeline::parallel_map(batch.len(), serve.threads, |i| {
                let t = Instant::now();
                let response = expander.expand(&batch[i]);
                (t.elapsed().as_secs_f64() * 1e6, response)
            });
            for (request, (micros, response)) in batch.iter().zip(timed) {
                latencies_us.push(micros);
                report(
                    &request.text,
                    &response,
                    serve.json,
                    &mut served,
                    &mut failures,
                );
            }
        }
    } else {
        // The long-lived loop: serve stdin until EOF.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.unwrap_or_else(|e| {
                eprintln!("error: stdin: {e}");
                std::process::exit(2);
            });
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let request = ExpansionRequest::new(text);
            let t = Instant::now();
            let response = expander.expand(&request);
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            report(text, &response, serve.json, &mut served, &mut failures);
            let _ = std::io::stdout().flush();
        }
        workload_queries = served + failures;
    }

    let total_seconds = t_serve.elapsed().as_secs_f64();
    let answered = served + failures;
    let latency = LatencySummary::of(&latencies_us);
    let qps = answered as f64 / total_seconds.max(1e-9);
    let (cache_hits, cache_lookups, cache_hit_rate) = cache
        .as_ref()
        .map(|c| (c.hits(), c.lookups(), c.hit_rate()))
        .unwrap_or((0, 0, 0.0));
    eprintln!(
        "# served {answered} queries ({failures} typed errors) in {total_seconds:.3}s \
         — {qps:.0} q/s; {}",
        latency.render()
    );
    if cache.is_some() {
        eprintln!(
            "# expansion cache: {cache_hits}/{cache_lookups} hits ({:.1}%)",
            100.0 * cache_hit_rate
        );
    }

    if let Some(path) = &cli.bench_out {
        // The record attributes measurements to what actually ran:
        // stdin mode is strictly sequential-once whatever the flags
        // said, and `parallel_map` caps workers at the workload size.
        let (effective_threads, effective_repeat) = if fixed_workload {
            (serve.threads.min(workload_queries.max(1)), serve.repeat)
        } else {
            (1, 1)
        };
        let record = ServeRecord::new(
            &config,
            &world.stats,
            workload_queries,
            ServeSummary {
                strategy: serve.strategy.name().to_string(),
                queries_served: served,
                failures,
                repeat: effective_repeat,
                top_k: serve.top_k,
                threads: effective_threads,
                shard_threads: effective_shard_threads,
                total_seconds,
                qps,
                qps_per_thread: qps / effective_threads.max(1) as f64,
                search_mode: search_mode.name().to_string(),
                cache_hits,
                cache_lookups,
                cache_hit_rate,
                latency,
            },
        );
        let json = serde_json::to_string_pretty(&record).expect("serve record serializes");
        std::fs::write(path, json).expect("write serve record");
        eprintln!("# wrote {path}");
    }
}

/// Print one served response (or typed error) and bump the counters.
fn report(
    text: &str,
    response: &Result<ExpansionResponse, ServiceError>,
    json: bool,
    served: &mut usize,
    failures: &mut usize,
) {
    match response {
        Ok(r) => {
            *served += 1;
            if json {
                println!("{}", serde_json::to_string(r).expect("response serializes"));
            } else {
                let titles = |terms: &[querygraph_core::service::ExpansionTerm]| {
                    terms
                        .iter()
                        .map(|t| t.title.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let hits = if r.hits.is_empty() {
                    String::new()
                } else {
                    format!(
                        "  hits=[{}]",
                        r.hits
                            .iter()
                            .map(|h| h.doc.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                println!(
                    "{:?}  entities=[{}]  features=[{}]{hits}",
                    r.query,
                    titles(&r.entities),
                    titles(&r.features),
                );
            }
        }
        Err(e) => {
            *failures += 1;
            if json {
                // Both fields go through the serializer — `{:?}` is
                // Rust escaping, not JSON, and the error's Display can
                // embed quotes.
                println!(
                    "{{\"query\":{},\"error\":{}}}",
                    serde_json::to_string(&text.to_string()).expect("string serializes"),
                    serde_json::to_string(&e.to_string()).expect("string serializes"),
                );
            } else {
                println!("{text:?}  error: {e}");
            }
        }
    }
}
