//! `qgx` — the query-expansion server, now with a socket.
//!
//! Eight subcommands over one world-boot path:
//!
//! ```text
//! qgx serve   --listen <addr>  [world flags] [--workers n] [--queue n]
//!             [--deadline-ms n] [--keep-alive n] [--shard-procs n]
//!             [--bench-out path]
//! qgx bench   [world flags | --connect <addr> --queries f]
//!             [--rps a,b,c] [--duration-s s] [--conns n] [--zipf s]
//!             [--seed n] [--warmup-passes n] [--workers n] [--queue n]
//!             [--deadline-ms n] [--bench-out path]
//! qgx replay  [world flags] [--queries f | --seed-queries] [--repeat n]
//!             [--zipf s] [--threads n] [--deadline-ms n] [--json]
//!             [--shard-procs n] [--bench-out path]
//! qgx client  --connect <addr> [--healthz | --statz | --flood n |
//!             --query text | --queries f | --seed-queries [tier flags]]
//!             [--repeat n] [--top-k k] [--max-features n] [--timeout-ms n]
//! qgx shard   --shard <i> --fingerprint <fp> [--listen <addr>] [--mmap]
//!             (--dir <dir> --stem <stem> | --segstore <dir> --seq <s>)
//! qgx dump    --out <path> [tier flags] [--skip n] [--docs n]
//! qgx ingest  --dump <path> --segstore <dir> [tier flags]
//!             [--batch-docs n] [--compact n] [--bench-out path]
//! qgx compact --segstore <dir> [tier flags] [--shards n]
//!             [--bench-out path]
//! ```
//!
//! * `serve` binds the `core::http` HTTP/1.1 front-end over the loaded
//!   world: `POST /expand`, `GET /healthz`, `GET /statz`, per-request
//!   deadlines starting at accept, a bounded connection queue with
//!   503 + `Retry-After` shedding, and SIGTERM/SIGINT draining
//!   in-flight queries before exit. `--bench-out` archives a schema-7
//!   `ServeRecord` (listen address, shed/timeout counters, per-code
//!   failures, per-connection p99) after the drain.
//! * `bench` is the **open-loop** load harness (ROADMAP item 5): a
//!   Poisson arrival generator fires requests at each `--rps` ladder
//!   step for `--duration-s` seconds regardless of how fast the server
//!   answers, over `--conns` client connections, with a
//!   Zipf(`--zipf`)-mixed query pool — so queueing delay and tail
//!   latency are *measured* (from each request's scheduled arrival,
//!   wrk2-style) instead of hidden the way closed-loop replay hides
//!   them. By default it boots the tier's world and serves it on an
//!   ephemeral port with `--workers` workers; `--connect <addr>
//!   --queries <file>` drives an already-running server instead.
//!   `--warmup-passes 0` (the default) measures a cold expansion
//!   cache; ≥ 1 pre-touches the pool. The ladder is a deterministic
//!   function of `--seed`. `--bench-out` archives a schema-9
//!   `LoadRecord` (kind `"load"`, committed as `BENCH_load.json` for
//!   the seed tier) whose headline p50/p99/p99.9 and
//!   goodput-vs-offered-load come from the constant-memory log-bucketed
//!   histogram.
//! * `replay` is the former bare-flag behaviour: serve a stdin, file,
//!   or seed workload **in process** and report latency percentiles
//!   and QPS. `--deadline-ms` applies the same typed per-request
//!   deadline path the server uses; `--json` emits one response JSON
//!   object per line — byte-identical to the corresponding `/expand`
//!   response bodies, which is what the `http-smoke` CI job `cmp`s.
//! * `client` drives a running `qgx serve` over `std::net`: health and
//!   stats probes, single queries, file/seed workloads (response
//!   bodies stream to stdout exactly as received), and `--flood n` —
//!   n concurrent one-shot connections for forced-overload tests
//!   (every response must still be clean, typed HTTP).
//!
//! * `shard` serves **one** `QGIX` segment as a standalone process over
//!   the QGRP binary RPC protocol (DESIGN.md §13): it loads the
//!   segment, verifies the embedded per-slot fingerprint, announces its
//!   bound address on stdout (`QGRP listening <addr>`), and drains on
//!   stdin EOF, SIGTERM/SIGINT, or a `Shutdown` frame. `serve
//!   --shard-procs N` and `replay --shard-procs N` supervise N of these
//!   children and scatter-gather across them through
//!   `retrieval::remote::RemoteEngine` — byte-identical to the
//!   in-process `--shards N` engine over the same artifact. With
//!   `--segstore <dir> --seq <s>` it serves one segment-store segment
//!   instead (seq-keyed fingerprint pinning).
//!
//! * `dump` / `ingest` / `compact` are the streaming build path
//!   (DESIGN.md §14): `dump` writes a tier's corpus as an XML dump
//!   (optionally a `--skip/--docs` slice, so a dump can arrive in
//!   batches); `ingest` streams a dump through
//!   `corpus::ingest::DumpStream` in bounded memory, freezing every
//!   `--batch-docs` documents into one `QGIX` segment of a `QGSS`
//!   segment store; `compact` merges the live segments into `--shards`
//!   balanced ones. `serve --segstore <dir>` and `replay --segstore`
//!   serve the store's current generation and (serve only)
//!   watch the manifest, hot-swapping the engine onto each newly
//!   published generation with zero downtime.
//!
//! **Deprecated alias:** invoking `qgx` with bare flags (no
//! subcommand) warns once on stderr and behaves exactly like
//! `qgx replay` with the same flags, so existing scripts keep working.
//!
//! World flags (shared by `serve` and `replay`): `--tiny | --quick |
//! --stress [--quick]`, `--index-cache <dir>`, `--shards <n>`,
//! `--shard-threads <n>`, `--mmap`, `--strategy
//! cycles|links|redirects|none`, `--max-features <n>`, `--top-k <k>`,
//! `--prune`, `--expansion-cache <n>`.

use querygraph_bench::{
    flag_f64, flag_operand, flag_usize, load_plan, CliOptions, IngestRecord, IngestSummary,
    LatencySummary, LoadRecord, LoadStep, LoadSummary, ServeRecord, ServeSummary, ZipfSampler,
};
use querygraph_core::expcache::ExpansionCache;
use querygraph_core::http::{self, HttpServer, ServerConfig};
use querygraph_core::service::{
    Deadline, ExpansionRequest, ExpansionResponse, ExpansionStrategy, QueryExpander,
    QueryExpanderBuilder, ServiceError, ServingWorld,
};
use querygraph_retrieval::engine::SearchMode;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Flags selecting and tuning the served world, shared by `serve` and
/// `replay` (each subcommand adds its own on top).
const WORLD_FLAGS: [(&str, bool); 13] = [
    ("--tiny", false),
    ("--quick", false),
    ("--stress", false),
    ("--track", false),
    ("--index-cache", true),
    ("--segstore", true),
    ("--shards", true),
    ("--shard-threads", true),
    ("--mmap", false),
    ("--strategy", true),
    ("--max-features", true),
    ("--top-k", true),
    ("--prune", false),
];

const REPLAY_FLAGS: [(&str, bool); 10] = [
    ("--queries", true),
    ("--seed-queries", false),
    ("--repeat", true),
    ("--zipf", true),
    ("--threads", true),
    ("--deadline-ms", true),
    ("--expansion-cache", true),
    ("--json", false),
    ("--shard-procs", true),
    ("--bench-out", true),
];

const SERVE_FLAGS: [(&str, bool); 8] = [
    ("--listen", true),
    ("--workers", true),
    ("--queue", true),
    ("--deadline-ms", true),
    ("--keep-alive", true),
    ("--expansion-cache", true),
    ("--shard-procs", true),
    ("--bench-out", true),
];

const BENCH_FLAGS: [(&str, bool); 14] = [
    ("--connect", true),
    ("--expansion-cache", true),
    ("--rps", true),
    ("--duration-s", true),
    ("--conns", true),
    ("--zipf", true),
    ("--seed", true),
    ("--warmup-passes", true),
    ("--queries", true),
    ("--seed-queries", false),
    ("--workers", true),
    ("--queue", true),
    ("--deadline-ms", true),
    ("--bench-out", true),
];

const SHARD_FLAGS: [(&str, bool); 8] = [
    ("--dir", true),
    ("--stem", true),
    ("--segstore", true),
    ("--seq", true),
    ("--shard", true),
    ("--fingerprint", true),
    ("--listen", true),
    ("--mmap", false),
];

const DUMP_FLAGS: [(&str, bool); 7] = [
    ("--tiny", false),
    ("--quick", false),
    ("--stress", false),
    ("--track", false),
    ("--out", true),
    ("--skip", true),
    ("--docs", true),
];

const INGEST_FLAGS: [(&str, bool); 9] = [
    ("--tiny", false),
    ("--quick", false),
    ("--stress", false),
    ("--track", false),
    ("--dump", true),
    ("--segstore", true),
    ("--batch-docs", true),
    ("--compact", true),
    ("--bench-out", true),
];

const COMPACT_FLAGS: [(&str, bool); 8] = [
    ("--tiny", false),
    ("--quick", false),
    ("--stress", false),
    ("--track", false),
    ("--segstore", true),
    ("--shards", true),
    ("--mmap", false),
    ("--bench-out", true),
];

const CLIENT_FLAGS: [(&str, bool); 15] = [
    ("--connect", true),
    ("--timeout-ms", true),
    ("--healthz", false),
    ("--statz", false),
    ("--flood", true),
    ("--query", true),
    ("--queries", true),
    ("--seed-queries", false),
    ("--repeat", true),
    ("--top-k", true),
    ("--max-features", true),
    ("--tiny", false),
    ("--quick", false),
    ("--stress", false),
    ("--track", false),
];

/// Reject unrecognized `--flags` (operand values are skipped) — a
/// typo'd flag must not silently fall back to a different workload
/// (e.g. blocking on stdin in CI).
fn reject_unknown_flags(args: &[String], known: &[(&str, bool)], mode: &str) {
    let mut i = 1; // skip argv[0]
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            match known.iter().find(|(name, _)| name == arg) {
                Some((_, takes_operand)) => i += 1 + usize::from(*takes_operand),
                None => {
                    eprintln!(
                        "error: unknown flag {arg} for qgx {mode} (known: {})",
                        known.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
                    );
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("error: unexpected argument {arg:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => run_serve(&without_subcommand(&args)),
        Some("bench") => run_bench(&without_subcommand(&args)),
        Some("replay") => run_replay(&without_subcommand(&args)),
        Some("client") => run_client(&without_subcommand(&args)),
        Some("shard") => run_shard(&without_subcommand(&args)),
        Some("dump") => run_dump(&without_subcommand(&args)),
        Some("ingest") => run_ingest(&without_subcommand(&args)),
        Some("compact") => run_compact(&without_subcommand(&args)),
        Some(flag) if flag.starts_with("--") => {
            // The pre-subcommand CLI: bare flags meant what `replay`
            // means now. One warning, then identical behaviour.
            eprintln!(
                "# qgx: bare flags are deprecated; use `qgx replay` (same flags, same output)"
            );
            run_replay(&args);
        }
        None => {
            eprintln!(
                "# qgx: bare flags are deprecated; use `qgx replay` (same flags, same output)"
            );
            run_replay(&args);
        }
        Some(other) => {
            eprintln!(
                "error: unknown subcommand {other:?} \
                 (serve | bench | replay | client | shard | dump | ingest | compact)"
            );
            std::process::exit(2);
        }
    }
}

/// Drop `argv[1]` (the subcommand) so flag parsing sees only flags.
fn without_subcommand(args: &[String]) -> Vec<String> {
    let mut out = vec![args[0].clone()];
    out.extend_from_slice(&args[2..]);
    out
}

/// The expander knobs shared by `serve` and `replay`.
struct ExpanderOptions {
    strategy: ExpansionStrategy,
    max_features: Option<usize>,
    top_k: usize,
    shard_threads: usize,
    prune: bool,
    expansion_cache: Option<usize>,
}

impl ExpanderOptions {
    fn from_args(args: &[String]) -> ExpanderOptions {
        let strategy = match flag_operand(args, "--strategy") {
            None => ExpansionStrategy::default(),
            Some(name) => ExpansionStrategy::parse(&name).unwrap_or_else(|| {
                eprintln!("error: unknown --strategy {name:?} (cycles|links|redirects|none)");
                std::process::exit(2);
            }),
        };
        ExpanderOptions {
            strategy,
            max_features: flag_usize(args, "--max-features"),
            top_k: flag_usize(args, "--top-k").unwrap_or(0),
            shard_threads: flag_usize(args, "--shard-threads").unwrap_or(1).max(1),
            prune: args.iter().any(|a| a == "--prune"),
            expansion_cache: flag_usize(args, "--expansion-cache"),
        }
    }

    fn search_mode(&self) -> SearchMode {
        if self.prune {
            SearchMode::Pruned
        } else {
            SearchMode::Exact
        }
    }

    /// The builder these knobs select (cache attached separately so
    /// the caller keeps a counter handle).
    fn builder(&self, cache: &Option<Arc<ExpansionCache>>) -> QueryExpanderBuilder {
        let mut builder = QueryExpander::builder()
            .strategy(self.strategy.clone())
            .search_mode(self.search_mode());
        if let Some(max) = self.max_features {
            builder = builder.max_features(max);
        }
        if self.top_k > 0 {
            builder = builder.retrieve_top(self.top_k);
        }
        if let Some(cache) = cache {
            builder = builder.expansion_cache(cache.clone());
        }
        builder
    }
}

/// Boot the world once (synthesize or load), wire shard scatter, and
/// report provenance on stderr. Returns the effective per-query shard
/// scatter width alongside.
fn boot_world(
    cli: &CliOptions,
    ex: &ExpanderOptions,
    want_seed_corpus: bool,
) -> (
    ServingWorld,
    Option<querygraph_corpus::synth::SynthCorpus>,
    usize,
) {
    let config = cli.config();
    let (mut world, seed_corpus) = {
        let (world, corpus) = ServingWorld::open_with_options(
            &config,
            cli.index_cache.as_deref(),
            querygraph_retrieval::lm::LmParams::default(),
            &cli.world_options(),
        );
        (world, want_seed_corpus.then_some(corpus))
    };
    let effective_shard_threads = match &mut world.engine {
        querygraph_retrieval::backend::AnyEngine::Sharded(engine) => {
            engine.set_search_threads(ex.shard_threads);
            ex.shard_threads.min(engine.shard_count()).max(1)
        }
        querygraph_retrieval::backend::AnyEngine::Mono(_) => {
            if ex.shard_threads > 1 {
                eprintln!("# qgx: --shard-threads applies to --shards workloads only");
            }
            1
        }
        // Never booted here: a remote fleet replaces the engine only
        // *after* boot (see `spawn_shard_procs`), which recomputes the
        // effective scatter width itself; a reloadable engine is
        // installed only by the segstore serve path, after boot too.
        querygraph_retrieval::backend::AnyEngine::Remote(_)
        | querygraph_retrieval::backend::AnyEngine::Reloadable(_) => 1,
    };
    eprintln!(
        "# qgx: {} articles, index {} x{} shard(s) (world {:.3}s, build {:.3}s, load {:.3}s); \
         strategy {}, top-k {}, search {}, cache {}",
        world.wiki.kb.num_articles(),
        world.stats.index_source.name(),
        world.stats.shard_count,
        world.stats.world_seconds,
        world.stats.index_build_seconds,
        world.stats.index_load_seconds,
        ex.strategy.name(),
        ex.top_k,
        ex.search_mode().name(),
        ex.expansion_cache
            .map(|n| n.to_string())
            .unwrap_or_else(|| "off".to_string()),
    );
    (world, seed_corpus, effective_shard_threads)
}

fn expansion_cache(ex: &ExpanderOptions) -> Option<Arc<ExpansionCache>> {
    ex.expansion_cache
        .filter(|&n| n > 0)
        .map(|n| Arc::new(ExpansionCache::new(n)))
}

// ------------------------------------------------------ shard processes

/// The supervised children behind `--shard-procs N`: one `qgx shard`
/// process per segment, stdin held open as the drain signal.
struct ShardFleet {
    children: Vec<std::process::Child>,
}

impl ShardFleet {
    /// Drain the fleet: close every child's stdin (its shutdown
    /// signal — works even if the QGRP socket is wedged), give them a
    /// shared grace window to exit, then kill stragglers. Always
    /// reaps, so no zombies outlive the supervisor.
    fn drain(mut self) {
        for child in &mut self.children {
            drop(child.stdin.take());
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for (shard, child) in self.children.iter_mut().enumerate() {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        log_line(&format!("# qgx: shard {shard} exited ({status})"));
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Ok(None) | Err(_) => {
                        eprintln!("# qgx: shard {shard} did not drain in time; killing");
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

/// Log one line to stderr in a single `write` syscall. Supervisor and
/// shard children share the stderr fd; `eprintln!` issues one write
/// per format fragment, so concurrent boot announcements can
/// byte-interleave unless each line goes out whole.
fn log_line(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let _ = std::io::stderr().write_all(buf.as_bytes());
}

/// Boot-failure cleanup: kill and reap every child spawned so far.
fn kill_children(children: &mut [std::process::Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Spawn `n` `qgx shard` children over the segmented artifact the
/// in-process boot just built/validated, wait for each one's stdout
/// announce line, and connect a `RemoteEngine` across them. Exits
/// (after killing any children already spawned) rather than serving
/// with a partial fleet.
fn spawn_shard_procs(
    cli: &CliOptions,
    ex: &ExpanderOptions,
    n: usize,
) -> (ShardFleet, querygraph_retrieval::remote::RemoteEngine) {
    use std::process::{Command, Stdio};
    let cache_dir = cli.index_cache.clone().unwrap_or_else(|| {
        eprintln!(
            "error: --shard-procs requires --index-cache (children load QGIX segments from it)"
        );
        std::process::exit(2);
    });
    if cli.shards != Some(n) {
        eprintln!(
            "error: --shard-procs {n} requires --shards {n} \
             (the segmented artifact layout the children serve)"
        );
        std::process::exit(2);
    }
    let config = cli.config();
    let stem = querygraph_core::cache::sharded_stem(&config, n);
    let fingerprint = querygraph_core::cache::sharded_fingerprint(&config, n);
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("error: cannot locate the qgx binary: {e}");
        std::process::exit(1);
    });

    let mut children: Vec<std::process::Child> = Vec::with_capacity(n);
    let mut addrs: Vec<String> = Vec::with_capacity(n);
    for shard in 0..n {
        let mut command = Command::new(&exe);
        command
            .arg("shard")
            .arg("--dir")
            .arg(&cache_dir)
            .arg("--stem")
            .arg(&stem)
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--fingerprint")
            .arg(format!("{fingerprint:016x}"))
            .arg("--listen")
            .arg("127.0.0.1:0")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if cli.mmap {
            command.arg("--mmap");
        }
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e) => {
                eprintln!("error: cannot spawn shard {shard}: {e}");
                kill_children(&mut children);
                std::process::exit(1);
            }
        };
        // The child's first stdout line is its QGRP announce; EOF
        // before that means it died (its stderr is inherited, so the
        // reason is already on ours).
        let stdout = child.stdout.take().expect("piped child stdout");
        let mut line = String::new();
        let read = std::io::BufReader::new(stdout).read_line(&mut line);
        let addr = match read {
            Ok(len) if len > 0 => querygraph_retrieval::remote::server::parse_announce(line.trim()),
            _ => None,
        };
        let Some(addr) = addr else {
            eprintln!(
                "error: shard {shard} did not announce a QGRP address (got {:?})",
                line.trim()
            );
            children.push(child);
            kill_children(&mut children);
            std::process::exit(1);
        };
        log_line(&format!(
            "# qgx: shard {shard} pid {} listening on {addr}",
            child.id()
        ));
        addrs.push(addr);
        children.push(child);
    }

    let remote = match querygraph_retrieval::remote::RemoteEngine::connect(
        &addrs,
        querygraph_retrieval::lm::LmParams::default(),
        fingerprint,
    ) {
        Ok(remote) => remote.with_search_threads(ex.shard_threads),
        Err(e) => {
            eprintln!("error: cannot connect to the shard fleet: {e}");
            kill_children(&mut children);
            std::process::exit(1);
        }
    };
    (ShardFleet { children }, remote)
}

/// Parse `--shard-procs` and, when present, replace `world.engine`
/// with a `RemoteEngine` over `n` freshly spawned shard children.
/// Must run before the expander borrows the world. Returns the fleet
/// (drain it after serving) and the effective scatter width.
fn maybe_shard_procs(
    args: &[String],
    cli: &CliOptions,
    ex: &ExpanderOptions,
    world: &mut ServingWorld,
    in_process_width: usize,
) -> (Option<ShardFleet>, usize) {
    match flag_usize(args, "--shard-procs") {
        None => (None, in_process_width),
        Some(0) => (None, in_process_width),
        Some(n) => {
            let (fleet, remote) = spawn_shard_procs(cli, ex, n);
            let width = ex.shard_threads.min(n).max(1);
            world.engine = querygraph_retrieval::backend::AnyEngine::Remote(remote);
            (Some(fleet), width)
        }
    }
}

/// Shut the fleet down politely (QGRP `Shutdown` to every child, then
/// the stdin-EOF drain path) once serving is over.
fn teardown_fleet(fleet: Option<ShardFleet>, world: &ServingWorld) {
    if let Some(fleet) = fleet {
        if let querygraph_retrieval::backend::AnyEngine::Remote(remote) = &world.engine {
            remote.shutdown_all();
        }
        fleet.drain();
    }
}

// ------------------------------------------------- segment-store serving

/// What `serve`/`replay --segstore <dir>` keep next to the world: the
/// store's identity plus a handle on the hot-swappable engine slot.
struct SegstoreBoot {
    dir: std::path::PathBuf,
    /// The store (= world-configuration) fingerprint.
    fingerprint: u64,
    /// The manifest observed at boot.
    manifest: querygraph_retrieval::segstore::Manifest,
    /// A second handle on the slot `world.engine` reads through; the
    /// watcher thread (and `--shard-procs` boot) swap through this one.
    reloadable: querygraph_retrieval::backend::ReloadableEngine,
}

fn segstore_source(cli: &CliOptions) -> querygraph_retrieval::ondisk::ArtifactSource {
    if cli.mmap {
        querygraph_retrieval::ondisk::ArtifactSource::Mmap
    } else {
        querygraph_retrieval::ondisk::ArtifactSource::Read
    }
}

/// Boot a [`ServingWorld`] from a `QGSS` segment store: synthesize the
/// wiki only (expansion needs the knowledge graph; the corpus text
/// already lives in the segments), load the current generation, and
/// install it behind a `ReloadableEngine` whose cache epoch is the
/// generation fingerprint — so hot swaps invalidate the expansion
/// cache exactly when the document set changes.
fn boot_segstore_world(
    cli: &CliOptions,
    ex: &ExpanderOptions,
    dir: &std::path::Path,
) -> (ServingWorld, SegstoreBoot) {
    use querygraph_retrieval::backend::{AnyEngine, ReloadableEngine};
    use querygraph_retrieval::segstore;

    let config = cli.config();
    if cli.index_cache.is_some() || cli.shards.is_some() {
        eprintln!("error: --segstore is its own index source; drop --index-cache/--shards");
        std::process::exit(2);
    }
    let fingerprint = querygraph_core::cache::config_fingerprint(&config);
    let t_world = Instant::now();
    let wiki = querygraph_wiki::synth::generate(&config.wiki);
    let world_seconds = t_world.elapsed().as_secs_f64();

    let t_load = Instant::now();
    let generation = match segstore::load_generation(dir, fingerprint, segstore_source(cli)) {
        Ok(Some(generation)) => generation,
        Ok(None) => {
            eprintln!(
                "error: segment store {} has never published — run `qgx ingest` first",
                dir.display()
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: segment store {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    let manifest = generation.manifest.clone();
    let lm = querygraph_retrieval::lm::LmParams::default();
    let mut engine =
        querygraph_retrieval::sharded::ShardedEngine::from_shards(generation.into_engines(lm), lm);
    engine.set_search_threads(ex.shard_threads);
    let index_load_seconds = t_load.elapsed().as_secs_f64();

    let epoch = manifest.generation_fingerprint();
    let reloadable = ReloadableEngine::new(AnyEngine::Sharded(engine), epoch);
    let stats = querygraph_core::cache::BuildStats {
        world_seconds,
        index_build_seconds: 0.0,
        index_write_seconds: 0.0,
        index_load_seconds,
        index_source: querygraph_core::cache::IndexSource::Loaded,
        shard_count: manifest.segments.len(),
        shard_load_seconds: Vec::new(),
    };
    let world = ServingWorld {
        wiki,
        engine: AnyEngine::Reloadable(reloadable.clone()),
        config,
        stats,
    };
    eprintln!(
        "# qgx: {} articles, segstore generation {} ({} docs, {} segment(s)) \
         (world {world_seconds:.3}s, load {index_load_seconds:.3}s); \
         strategy {}, top-k {}, search {}, cache {}",
        world.wiki.kb.num_articles(),
        manifest.generation,
        manifest.total_docs(),
        manifest.segments.len(),
        ex.strategy.name(),
        ex.top_k,
        ex.search_mode().name(),
        ex.expansion_cache
            .map(|n| n.to_string())
            .unwrap_or_else(|| "off".to_string()),
    );
    (
        world,
        SegstoreBoot {
            dir: dir.to_path_buf(),
            fingerprint,
            manifest,
            reloadable,
        },
    )
}

/// Spawn one `qgx shard --segstore --seq` child per live segment of
/// `manifest` and connect a `RemoteEngine` across them with seq-keyed
/// fingerprint pinning. Unlike [`spawn_shard_procs`] this returns an
/// error instead of exiting: the live-reload watcher must keep serving
/// the old generation when a new fleet fails to come up.
fn spawn_segstore_fleet(
    dir: &std::path::Path,
    store_fp: u64,
    manifest: &querygraph_retrieval::segstore::Manifest,
    shard_threads: usize,
    mmap: bool,
) -> Result<(ShardFleet, querygraph_retrieval::remote::RemoteEngine), String> {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate the qgx binary: {e}"))?;
    let mut children: Vec<std::process::Child> = Vec::with_capacity(manifest.segments.len());
    let mut addrs: Vec<String> = Vec::with_capacity(manifest.segments.len());
    for (slot, seg) in manifest.segments.iter().enumerate() {
        let mut command = Command::new(&exe);
        command
            .arg("shard")
            .arg("--segstore")
            .arg(dir)
            .arg("--seq")
            .arg(seg.seq.to_string())
            .arg("--shard")
            .arg(slot.to_string())
            .arg("--fingerprint")
            .arg(format!("{store_fp:016x}"))
            .arg("--listen")
            .arg("127.0.0.1:0")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if mmap {
            command.arg("--mmap");
        }
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e) => {
                kill_children(&mut children);
                return Err(format!("cannot spawn segment {}: {e}", seg.seq));
            }
        };
        let stdout = child.stdout.take().expect("piped child stdout");
        let mut line = String::new();
        let read = std::io::BufReader::new(stdout).read_line(&mut line);
        let addr = match read {
            Ok(len) if len > 0 => querygraph_retrieval::remote::server::parse_announce(line.trim()),
            _ => None,
        };
        let Some(addr) = addr else {
            children.push(child);
            kill_children(&mut children);
            return Err(format!(
                "segment {} did not announce a QGRP address (got {:?})",
                seg.seq,
                line.trim()
            ));
        };
        log_line(&format!(
            "# qgx: segment {} (slot {slot}) pid {} listening on {addr}",
            seg.seq,
            child.id()
        ));
        addrs.push(addr);
        children.push(child);
    }
    let expected: Vec<u64> = manifest
        .segments
        .iter()
        .map(|s| querygraph_retrieval::segstore::segment_fp(store_fp, s.seq))
        .collect();
    match querygraph_retrieval::remote::RemoteEngine::connect_with_fingerprints(
        &addrs,
        querygraph_retrieval::lm::LmParams::default(),
        &expected,
    ) {
        Ok(remote) => Ok((
            ShardFleet { children },
            remote.with_search_threads(shard_threads),
        )),
        Err(e) => {
            kill_children(&mut children);
            Err(format!("cannot connect to the segment fleet: {e}"))
        }
    }
}

/// `--shard-procs` over a segment store: one child per live segment,
/// swapped into the reloadable slot. The epoch is unchanged — same
/// generation, byte-identical answers — so warmed expansion-cache
/// entries stay valid. Exits on boot failure, like `spawn_shard_procs`.
fn maybe_segstore_fleet(
    boot: &SegstoreBoot,
    shard_procs: Option<usize>,
    ex: &ExpanderOptions,
    mmap: bool,
) -> Option<ShardFleet> {
    let n = shard_procs?;
    if n != boot.manifest.segments.len() {
        eprintln!(
            "error: --shard-procs {n} but the live generation has {} segment(s) — \
             `qgx compact --shards {n}` reshapes it",
            boot.manifest.segments.len()
        );
        std::process::exit(2);
    }
    match spawn_segstore_fleet(
        &boot.dir,
        boot.fingerprint,
        &boot.manifest,
        ex.shard_threads,
        mmap,
    ) {
        Ok((fleet, remote)) => {
            boot.reloadable.swap(
                querygraph_retrieval::backend::AnyEngine::Remote(remote),
                boot.reloadable.epoch(),
            );
            Some(fleet)
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Shut a segstore fleet down once serving is over: QGRP `Shutdown`
/// through the current generation's remote engine, then the stdin-EOF
/// drain path.
fn teardown_segstore(boot: &SegstoreBoot, fleet: Option<ShardFleet>) {
    if let Some(fleet) = fleet {
        if let querygraph_retrieval::backend::AnyEngine::Remote(remote) =
            &boot.reloadable.snapshot().engine
        {
            remote.shutdown_all();
        }
        fleet.drain();
    }
}

/// Retire a replaced generation: wait for its in-flight queries to
/// finish (after the swap, only they hold extra `Arc`s on it), then
/// shut down and drain its shard fleet, if any.
fn retire_generation(
    old: Arc<querygraph_retrieval::backend::EngineGeneration>,
    old_fleet: Option<ShardFleet>,
) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Arc::strong_count(&old) > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    if let querygraph_retrieval::backend::AnyEngine::Remote(remote) = &old.engine {
        remote.shutdown_all();
    }
    drop(old);
    if let Some(fleet) = old_fleet {
        fleet.drain();
    }
}

/// The live-reload watcher behind `qgx serve --segstore`: poll the
/// manifest and, when a new generation appears, build its engine **off
/// the serving path** (load segments / spawn a fleet first), then swap
/// it into the reloadable slot — the only serving-visible pause is the
/// swap itself, one mutex-guarded pointer replace. The replaced
/// generation is retired only after its in-flight queries finish, so
/// no request is dropped across the swap. Owns the fleet (when in
/// `--shard-procs` mode) for its whole lifetime; on shutdown it drains
/// whichever fleet is current.
fn spawn_segstore_watcher(
    boot: SegstoreBoot,
    initial_fleet: Option<ShardFleet>,
    shard_threads: usize,
    mmap: bool,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<()> {
    use querygraph_retrieval::backend::AnyEngine;
    use querygraph_retrieval::segstore;
    use std::sync::atomic::Ordering;

    std::thread::spawn(move || {
        let lm = querygraph_retrieval::lm::LmParams::default();
        let source = if mmap {
            querygraph_retrieval::ondisk::ArtifactSource::Mmap
        } else {
            querygraph_retrieval::ondisk::ArtifactSource::Read
        };
        let fleet_mode = initial_fleet.is_some();
        let mut fleet = initial_fleet;
        let mut current = boot.reloadable.epoch();
        while !shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(300));
            let manifest = match segstore::read_manifest(&boot.dir, boot.fingerprint) {
                Ok(Some(manifest)) => manifest,
                Ok(None) => continue,
                Err(e) => {
                    eprintln!("# qgx: segstore watch: {e}");
                    continue;
                }
            };
            let epoch = manifest.generation_fingerprint();
            if epoch == current {
                continue;
            }
            let t_load = Instant::now();
            let (engine, new_fleet) = if fleet_mode {
                match spawn_segstore_fleet(
                    &boot.dir,
                    boot.fingerprint,
                    &manifest,
                    shard_threads,
                    mmap,
                ) {
                    Ok((new_fleet, remote)) => (AnyEngine::Remote(remote), Some(new_fleet)),
                    Err(e) => {
                        eprintln!(
                            "# qgx: generation {} fleet failed ({e}); \
                             still serving the previous one",
                            manifest.generation
                        );
                        continue;
                    }
                }
            } else {
                match segstore::load_generation(&boot.dir, boot.fingerprint, source) {
                    Ok(Some(generation))
                        if generation.manifest.generation_fingerprint() == epoch =>
                    {
                        let mut engine = querygraph_retrieval::sharded::ShardedEngine::from_shards(
                            generation.into_engines(lm),
                            lm,
                        );
                        engine.set_search_threads(shard_threads);
                        (AnyEngine::Sharded(engine), None)
                    }
                    // Raced another publish (or an unpublish we cannot
                    // serve); the next tick observes the settled state.
                    Ok(_) => continue,
                    Err(e) => {
                        eprintln!(
                            "# qgx: generation {} load failed ({e}); \
                             still serving the previous one",
                            manifest.generation
                        );
                        continue;
                    }
                }
            };
            let load_seconds = t_load.elapsed().as_secs_f64();
            let t_swap = Instant::now();
            let old = boot.reloadable.swap(engine, epoch);
            let pause_us = t_swap.elapsed().as_secs_f64() * 1e6;
            current = epoch;
            eprintln!(
                "# qgx: serving generation {} ({} docs, {} segment(s)) — \
                 prepared off-path in {load_seconds:.3}s, swap pause {pause_us:.0}µs",
                manifest.generation,
                manifest.total_docs(),
                manifest.segments.len()
            );
            let old_fleet = std::mem::replace(&mut fleet, new_fleet);
            retire_generation(old, old_fleet);
        }
        if let Some(fleet) = fleet {
            if let AnyEngine::Remote(remote) = &boot.reloadable.snapshot().engine {
                remote.shutdown_all();
            }
            fleet.drain();
        }
    })
}

// ---------------------------------------------------------------- serve

/// SIGTERM/SIGINT notification: the handler only flips an atomic; a
/// watcher thread relays it to the server's shutdown flag.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Install the flag-setting handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, handle);
            signal(15, handle);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

fn run_serve(args: &[String]) {
    let known: Vec<(&str, bool)> = WORLD_FLAGS.iter().chain(&SERVE_FLAGS).copied().collect();
    reject_unknown_flags(args, &known, "serve");
    let cli = CliOptions::from_vec(args);
    let ex = ExpanderOptions::from_args(args);
    let listen = flag_operand(args, "--listen").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let workers = flag_usize(args, "--workers").unwrap_or(4).max(1);
    let queue_depth = flag_usize(args, "--queue").unwrap_or(128).max(1);
    let deadline_ms = flag_usize(args, "--deadline-ms").unwrap_or(2000).max(1);
    let keep_alive = flag_usize(args, "--keep-alive").unwrap_or(100).max(1);

    let segstore_dir = flag_operand(args, "--segstore").map(std::path::PathBuf::from);
    let shard_procs_flag = flag_usize(args, "--shard-procs").filter(|&n| n > 0);
    let (world, segstore, mut fleet, effective_shard_threads) = match &segstore_dir {
        Some(dir) => {
            let (world, boot) = boot_segstore_world(&cli, &ex, dir);
            let fleet = maybe_segstore_fleet(&boot, shard_procs_flag, &ex, cli.mmap);
            let width = ex.shard_threads.min(boot.manifest.segments.len()).max(1);
            (world, Some(boot), fleet, width)
        }
        None => {
            let (mut world, _, in_process_width) = boot_world(&cli, &ex, false);
            let (fleet, width) = maybe_shard_procs(args, &cli, &ex, &mut world, in_process_width);
            (world, None, fleet, width)
        }
    };
    let shard_procs = fleet.as_ref().map(|f| f.children.len()).unwrap_or(0);
    let cache = expansion_cache(&ex);
    let expander = world.expander_from(&ex.builder(&cache));

    let server = HttpServer::bind(ServerConfig {
        addr: listen.clone(),
        workers,
        queue_depth,
        deadline: Duration::from_millis(deadline_ms as u64),
        keep_alive_requests: keep_alive,
        limits: http::HttpLimits::default(),
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr().map(|a| a.to_string()).unwrap_or(listen);
    eprintln!(
        "# qgx: listening on {addr} ({workers} workers, queue {queue_depth}, \
         deadline {deadline_ms} ms, keep-alive {keep_alive})"
    );

    let shutdown = server.shutdown_flag();
    #[cfg(unix)]
    {
        sig::install();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if sig::requested() {
                shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    // In segstore mode the watcher owns the fleet (it may replace it on
    // a live reload), so the post-serve teardown below sees `None`.
    let watcher = segstore.map(|boot| {
        spawn_segstore_watcher(
            boot,
            fleet.take(),
            ex.shard_threads,
            cli.mmap,
            Arc::clone(&shutdown),
        )
    });

    let stats = server.stats();
    let t_serve = Instant::now();
    if let Err(e) = server.serve(&expander) {
        eprintln!("error: serve loop failed: {e}");
        std::process::exit(1);
    }
    drop(shutdown);
    let total_seconds = t_serve.elapsed().as_secs_f64();
    drop(expander);
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }
    teardown_fleet(fleet, &world);

    let served = stats.queries_served() as usize;
    let failures = stats.failures() as usize;
    let answered = served + failures;
    // Serving stats live in constant-memory log-bucketed histograms
    // (a multi-hour serve cannot grow an exact sample Vec unboundedly);
    // the record says so via latency_mode: "histogram".
    let latency = LatencySummary::from_histogram(&stats.request_latency());
    let conn_latency = LatencySummary::from_histogram(&stats.connection_latency());
    let qps = answered as f64 / total_seconds.max(1e-9);
    eprintln!(
        "# served {answered} queries ({failures} typed errors, {} shed, {} timeouts) \
         over {} connections in {total_seconds:.3}s — {qps:.0} q/s; {}",
        stats.shed(),
        stats.timeouts(),
        stats.connections(),
        latency.render()
    );
    let (cache_hits, cache_lookups, cache_hit_rate) = cache
        .as_ref()
        .map(|c| (c.hits(), c.lookups(), c.hit_rate()))
        .unwrap_or((0, 0, 0.0));
    if cache.is_some() {
        eprintln!(
            "# expansion cache: {cache_hits}/{cache_lookups} hits ({:.1}%)",
            100.0 * cache_hit_rate
        );
    }

    if let Some(path) = &cli.bench_out {
        let mut record = ServeRecord::new(
            &cli.config(),
            &world.stats,
            answered,
            ServeSummary {
                strategy: ex.strategy.name().to_string(),
                queries_served: served,
                failures,
                repeat: 1,
                top_k: ex.top_k,
                threads: workers,
                shard_threads: effective_shard_threads,
                shard_procs,
                total_seconds,
                qps,
                qps_per_thread: qps / workers.max(1) as f64,
                search_mode: ex.search_mode().name().to_string(),
                cache_hits,
                cache_lookups,
                cache_hit_rate,
                shed: stats.shed(),
                timeouts: stats.timeouts(),
                error_codes: stats.error_codes(),
                latency_mode: "histogram".to_string(),
                latency,
                conn_latency: Some(conn_latency),
            },
        );
        record.listen_addr = Some(addr);
        let json = serde_json::to_string_pretty(&record).expect("serve record serializes");
        std::fs::write(path, json).expect("write serve record");
        eprintln!("# wrote {path}");
    }
}

// ---------------------------------------------------------------- bench

fn run_bench(args: &[String]) {
    // `--segstore` boots through a different path `bench` does not
    // wire; reject it rather than silently serving the wrong world.
    let known: Vec<(&str, bool)> = WORLD_FLAGS
        .iter()
        .filter(|(name, _)| *name != "--segstore")
        .chain(&BENCH_FLAGS)
        .copied()
        .collect();
    reject_unknown_flags(args, &known, "bench");
    let cli = CliOptions::from_vec(args);
    let ex = ExpanderOptions::from_args(args);
    let connect = flag_operand(args, "--connect");
    let rps_ladder: Vec<f64> = flag_operand(args, "--rps")
        .unwrap_or_else(|| "100,200,400".to_string())
        .split(',')
        .map(|s| {
            let v: f64 = s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: --rps takes a comma-separated list of rates, got {s:?}");
                std::process::exit(2);
            });
            if !(v > 0.0 && v.is_finite()) {
                eprintln!("error: --rps rates must be positive, got {v}");
                std::process::exit(2);
            }
            v
        })
        .collect();
    let duration_s = flag_f64(args, "--duration-s").unwrap_or(2.0);
    if !(duration_s > 0.0 && duration_s.is_finite()) {
        eprintln!("error: --duration-s must be positive, got {duration_s}");
        std::process::exit(2);
    }
    let conns = flag_usize(args, "--conns").unwrap_or(4).max(1);
    let zipf = flag_f64(args, "--zipf").unwrap_or(0.0);
    if !(zipf >= 0.0 && zipf.is_finite()) {
        eprintln!("error: --zipf exponent must be a finite number ≥ 0, got {zipf}");
        std::process::exit(2);
    }
    let seed = flag_usize(args, "--seed").unwrap_or(0xC0FFEE) as u64;
    let warmup_passes = flag_usize(args, "--warmup-passes").unwrap_or(0);
    let workers = flag_usize(args, "--workers").unwrap_or(4).max(1);
    let queue_depth = flag_usize(args, "--queue").unwrap_or(128).max(1);
    let deadline_ms = flag_usize(args, "--deadline-ms").unwrap_or(2000).max(1);
    let deadline = Duration::from_millis(deadline_ms as u64);
    let queries_file = flag_operand(args, "--queries");
    if queries_file.is_some() && args.iter().any(|a| a == "--seed-queries") {
        eprintln!("error: --queries and --seed-queries are mutually exclusive");
        std::process::exit(2);
    }
    let config = cli.config();

    if let Some(addr) = connect {
        // External server: the pool must come from a file — there is
        // no booted world to derive seed queries from, and the remote
        // worker count is unknown (recorded as 0).
        let pool = match &queries_file {
            Some(path) => read_query_file(path),
            None => {
                eprintln!("error: qgx bench --connect requires --queries <file>");
                std::process::exit(2);
            }
        };
        if pool.is_empty() {
            eprintln!("error: empty workload");
            std::process::exit(2);
        }
        eprintln!(
            "# qgx bench: driving {addr} ({} queries in pool)",
            pool.len()
        );
        let steps = drive_ladder(
            &addr,
            &pool,
            &rps_ladder,
            duration_s,
            conns,
            zipf,
            seed,
            warmup_passes,
            deadline,
        );
        let summary = LoadSummary::new(steps, conns, 0, zipf, seed, warmup_passes);
        write_load_record(&cli, &config, pool.len(), summary, Some(addr));
        return;
    }

    let (world, seed_corpus, _) = boot_world(&cli, &ex, queries_file.is_none());
    let pool: Vec<String> = match &queries_file {
        Some(path) => read_query_file(path),
        None => seed_corpus
            .expect("boot_world returns the corpus when seed queries are wanted")
            .queries
            .queries
            .iter()
            .map(|q| q.keywords.clone())
            .collect(),
    };
    if pool.is_empty() {
        eprintln!("error: empty workload");
        std::process::exit(2);
    }
    let cache = expansion_cache(&ex);
    let expander = world.expander_from(&ex.builder(&cache));
    let server = HttpServer::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        deadline,
        keep_alive_requests: 100,
        limits: http::HttpLimits::default(),
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot bind an ephemeral port: {e}");
        std::process::exit(1);
    });
    let addr = server
        .local_addr()
        .expect("bound server has an address")
        .to_string();
    eprintln!(
        "# qgx bench: serving on {addr} ({workers} workers, queue {queue_depth}, \
         deadline {deadline_ms} ms); pool {} queries, ladder {rps_ladder:?} rps × {duration_s}s, \
         {conns} conns, zipf {zipf}, seed {seed:#x}, warm-up {warmup_passes}",
        pool.len(),
    );
    let shutdown = server.shutdown_flag();
    let mut steps = Vec::new();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve(&expander));
        steps = drive_ladder(
            &addr,
            &pool,
            &rps_ladder,
            duration_s,
            conns,
            zipf,
            seed,
            warmup_passes,
            deadline,
        );
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = handle.join();
    });
    if let Some(cache) = &cache {
        eprintln!(
            "# expansion cache: {}/{} hits ({:.1}%)",
            cache.hits(),
            cache.lookups(),
            100.0 * cache.hit_rate()
        );
    }
    let summary = LoadSummary::new(steps, conns, workers, zipf, seed, warmup_passes);
    write_load_record(&cli, &config, pool.len(), summary, Some(addr));
}

/// Run the open-loop ladder against a live server at `addr`. Each step
/// precomputes its deterministic (arrival, query) plan, then `conns`
/// threads race a shared cursor through it: every request waits for
/// its scheduled instant, fires, and records latency **from the
/// scheduled arrival** — time a request spent waiting behind a slow
/// server counts against the tail (no coordinated omission).
#[allow(clippy::too_many_arguments)]
fn drive_ladder(
    addr: &str,
    pool: &[String],
    ladder: &[f64],
    duration_s: f64,
    conns: usize,
    zipf: f64,
    seed: u64,
    warmup_passes: usize,
    deadline: Duration,
) -> Vec<LoadStep> {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    // One serialized request body per pool entry, reused by every step.
    let bodies: Vec<String> = pool
        .iter()
        .map(|text| {
            serde_json::to_string(&ExpansionRequest::new(text.clone())).expect("request serializes")
        })
        .collect();
    // The client waits out the server's worst case (deadline + write
    // grace) rather than racing it.
    let client_timeout = deadline.max(Duration::from_secs(1)) * 2;
    for pass in 1..=warmup_passes {
        for body in &bodies {
            let _ = http::post_json(addr, "/expand", body, client_timeout);
        }
        eprintln!("# qgx bench: warm-up pass {pass}/{warmup_passes} done");
    }
    let mut steps = Vec::new();
    for (si, &rps) in ladder.iter().enumerate() {
        // Per-step sub-seed: steps draw independent schedules while
        // the whole ladder stays a pure function of --seed.
        let plan = load_plan(
            rps,
            duration_s,
            pool.len(),
            zipf,
            seed.wrapping_add(si as u64),
        );
        let cursor = AtomicUsize::new(0);
        let hist = querygraph_core::LatencyHistogram::default();
        let completed = AtomicU64::new(0);
        let failures = AtomicU64::new(0);
        let shed = AtomicU64::new(0);
        let timeouts = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..conns {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(arrival_us, qidx)) = plan.get(i) else {
                        break;
                    };
                    let scheduled = Duration::from_micros(arrival_us);
                    let now = start.elapsed();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let outcome = http::post_json(addr, "/expand", &bodies[qidx], client_timeout);
                    let lat_us = start.elapsed().saturating_sub(scheduled).as_secs_f64() * 1e6;
                    hist.record(lat_us);
                    match outcome {
                        Ok(r) if r.status == 200 => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(r) => {
                            // failures counts every non-200; shed and
                            // timeouts are its typed subsets.
                            failures.fetch_add(1, Ordering::Relaxed);
                            if r.status == 503 {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            if r.status == 408 {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let snap = hist.snapshot();
        let step = LoadStep {
            offered_rps: rps,
            duration_seconds: duration_s,
            sent: plan.len() as u64,
            completed: completed.load(Ordering::Relaxed),
            failures: failures.load(Ordering::Relaxed),
            shed: shed.load(Ordering::Relaxed),
            timeouts: timeouts.load(Ordering::Relaxed),
            goodput_qps: completed.load(Ordering::Relaxed) as f64 / wall.max(1e-9),
            p50_us: snap.percentile_us(50.0),
            p99_us: snap.percentile_us(99.0),
            p999_us: snap.percentile_us(99.9),
            max_us: snap.max_us(),
            mean_us: snap.mean_us(),
        };
        eprintln!(
            "# qgx bench: offered {:.0} rps → goodput {:.0} q/s; p50 {:.0}µs p99 {:.0}µs \
             p99.9 {:.0}µs ({} sent, {} failures, {} shed, {} timeouts)",
            step.offered_rps,
            step.goodput_qps,
            step.p50_us,
            step.p99_us,
            step.p999_us,
            step.sent,
            step.failures,
            step.shed,
            step.timeouts,
        );
        steps.push(step);
    }
    steps
}

/// Archive the ladder record (written only with `--bench-out`, like
/// every other subcommand's record).
fn write_load_record(
    cli: &CliOptions,
    config: &querygraph_core::ExperimentConfig,
    pool_queries: usize,
    summary: LoadSummary,
    addr: Option<String>,
) {
    if let Some(path) = &cli.bench_out {
        let mut record = LoadRecord::new(config, pool_queries, summary);
        record.listen_addr = addr;
        let json = serde_json::to_string_pretty(&record).expect("load record serializes");
        std::fs::write(path, json).expect("write load record");
        eprintln!("# wrote {path}");
    }
}

// --------------------------------------------------------------- replay

fn run_replay(args: &[String]) {
    let known: Vec<(&str, bool)> = WORLD_FLAGS.iter().chain(&REPLAY_FLAGS).copied().collect();
    reject_unknown_flags(args, &known, "replay");
    let cli = CliOptions::from_vec(args);
    let ex = ExpanderOptions::from_args(args);
    let queries_file = flag_operand(args, "--queries");
    let seed_queries = args.iter().any(|a| a == "--seed-queries");
    if queries_file.is_some() && seed_queries {
        // Two workload sources would mean silently serving one of
        // them — the failure class this CLI refuses throughout.
        eprintln!("error: --queries and --seed-queries are mutually exclusive");
        std::process::exit(2);
    }
    let repeat = flag_usize(args, "--repeat").unwrap_or(1).max(1);
    let threads = flag_usize(args, "--threads").unwrap_or(1).max(1);
    let json = args.iter().any(|a| a == "--json");
    let deadline_ms = flag_usize(args, "--deadline-ms");
    let zipf = flag_f64(args, "--zipf");
    if let Some(s) = zipf {
        if !(s >= 0.0 && s.is_finite()) {
            eprintln!("error: --zipf exponent must be a finite number ≥ 0, got {s}");
            std::process::exit(2);
        }
    }

    let config = cli.config();
    let segstore_dir = flag_operand(args, "--segstore").map(std::path::PathBuf::from);
    let shard_procs_flag = flag_usize(args, "--shard-procs").filter(|&n| n > 0);
    let (world, seed_corpus, segstore, fleet, effective_shard_threads) = match &segstore_dir {
        Some(dir) => {
            let (world, boot) = boot_segstore_world(&cli, &ex, dir);
            let fleet = maybe_segstore_fleet(&boot, shard_procs_flag, &ex, cli.mmap);
            // The tier's query set is derived from the same seeds the
            // ingested corpus came from; docs live in the segments.
            let seed_corpus = seed_queries
                .then(|| querygraph_corpus::synth::generate_corpus(&world.wiki, &config.corpus));
            let width = ex.shard_threads.min(boot.manifest.segments.len()).max(1);
            (world, seed_corpus, Some(boot), fleet, width)
        }
        None => {
            let (mut world, seed_corpus, in_process_width) = boot_world(&cli, &ex, seed_queries);
            let (fleet, width) = maybe_shard_procs(args, &cli, &ex, &mut world, in_process_width);
            (world, seed_corpus, None, fleet, width)
        }
    };
    let shard_procs = fleet.as_ref().map(|f| f.children.len()).unwrap_or(0);
    let cache = expansion_cache(&ex);
    let expander = world.expander_from(&ex.builder(&cache));
    // With --deadline-ms every request runs the same typed deadline
    // path the HTTP server uses (admission + post-compute checks).
    let expand = |request: &ExpansionRequest| -> Result<ExpansionResponse, ServiceError> {
        match deadline_ms {
            Some(ms) => expander
                .expand_deadlined(request, Deadline::after(Duration::from_millis(ms as u64))),
            None => expander.expand(request),
        }
    };

    let mut latencies_us: Vec<f64> = Vec::new();
    let mut tally = Tally::default();
    // Size of one repetition of the served workload (for the record's
    // `num_queries`); stdin mode counts as it goes.
    let workload_queries;
    let fixed_workload = seed_queries || queries_file.is_some();
    if !fixed_workload && (threads > 1 || repeat > 1 || zipf.is_some()) {
        eprintln!(
            "# qgx: --threads/--repeat/--zipf apply to --queries/--seed-queries workloads only"
        );
    }
    let t_serve = Instant::now();

    if fixed_workload {
        // Fixed workload: file or the tier's generated query set,
        // optionally repeated and optionally batched across threads.
        let workload: Vec<String> = if let Some(corpus) = &seed_corpus {
            corpus
                .queries
                .queries
                .iter()
                .map(|q| q.keywords.clone())
                .collect()
        } else {
            let path = queries_file.as_deref().expect("checked above");
            read_query_file(path)
        };
        if workload.is_empty() {
            eprintln!("error: empty workload");
            std::process::exit(2);
        }
        workload_queries = workload.len();
        let requests: Vec<ExpansionRequest> = workload
            .iter()
            .map(|text| ExpansionRequest::new(text.clone()))
            .collect();
        // --zipf: one seeded sampler across all repetitions, so the
        // whole served stream is a deterministic function of the
        // tier's seeds and the exponent.
        let mut zipf = zipf.map(|s| {
            ZipfSampler::new(
                requests.len(),
                s,
                config.wiki.seed ^ config.corpus.seed.rotate_left(17),
            )
        });
        for _ in 0..repeat {
            let sampled: Vec<ExpansionRequest>;
            let batch: &[ExpansionRequest] = match &mut zipf {
                Some(sampler) => {
                    sampled = (0..requests.len())
                        .map(|_| requests[sampler.sample()].clone())
                        .collect();
                    &sampled
                }
                None => &requests,
            };
            // The same deterministic work-stealing runner `expand_batch`
            // uses (inline on this thread at --threads 1), timing each
            // request inside its worker — the archived percentiles are
            // real per-request service times, while QPS reflects the
            // parallel wall clock.
            let timed = querygraph_core::pipeline::parallel_map(batch.len(), threads, |i| {
                let t = Instant::now();
                let response = expand(&batch[i]);
                (t.elapsed().as_secs_f64() * 1e6, response)
            });
            for (request, (micros, response)) in batch.iter().zip(timed) {
                latencies_us.push(micros);
                report(&request.text, &response, json, &mut tally);
            }
        }
    } else {
        // The long-lived loop: serve stdin until EOF.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.unwrap_or_else(|e| {
                eprintln!("error: stdin: {e}");
                std::process::exit(2);
            });
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let request = ExpansionRequest::new(text);
            let t = Instant::now();
            let response = expand(&request);
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            report(text, &response, json, &mut tally);
            let _ = std::io::stdout().flush();
        }
        workload_queries = tally.served + tally.failures;
    }

    let total_seconds = t_serve.elapsed().as_secs_f64();
    match &segstore {
        Some(boot) => teardown_segstore(boot, fleet),
        None => teardown_fleet(fleet, &world),
    }
    let answered = tally.served + tally.failures;
    let latency = LatencySummary::of(&latencies_us);
    let qps = answered as f64 / total_seconds.max(1e-9);
    let (cache_hits, cache_lookups, cache_hit_rate) = cache
        .as_ref()
        .map(|c| (c.hits(), c.lookups(), c.hit_rate()))
        .unwrap_or((0, 0, 0.0));
    eprintln!(
        "# served {answered} queries ({} typed errors) in {total_seconds:.3}s \
         — {qps:.0} q/s; {}",
        tally.failures,
        latency.render()
    );
    if cache.is_some() {
        eprintln!(
            "# expansion cache: {cache_hits}/{cache_lookups} hits ({:.1}%)",
            100.0 * cache_hit_rate
        );
    }

    if let Some(path) = &cli.bench_out {
        // The record attributes measurements to what actually ran:
        // stdin mode is strictly sequential-once whatever the flags
        // said, and `parallel_map` caps workers at the workload size.
        let (effective_threads, effective_repeat) = if fixed_workload {
            (threads.min(workload_queries.max(1)), repeat)
        } else {
            (1, 1)
        };
        let record = ServeRecord::new(
            &config,
            &world.stats,
            workload_queries,
            ServeSummary {
                strategy: ex.strategy.name().to_string(),
                queries_served: tally.served,
                failures: tally.failures,
                repeat: effective_repeat,
                top_k: ex.top_k,
                threads: effective_threads,
                shard_threads: effective_shard_threads,
                shard_procs,
                total_seconds,
                qps,
                qps_per_thread: qps / effective_threads.max(1) as f64,
                search_mode: ex.search_mode().name().to_string(),
                cache_hits,
                cache_lookups,
                cache_hit_rate,
                shed: 0,
                timeouts: tally.timeouts,
                error_codes: tally.error_codes,
                // Replay keeps every raw sample (bounded workload):
                // exact nearest-rank percentiles.
                latency_mode: "exact".to_string(),
                latency,
                conn_latency: None,
            },
        );
        let json = serde_json::to_string_pretty(&record).expect("serve record serializes");
        std::fs::write(path, json).expect("write serve record");
        eprintln!("# wrote {path}");
    }
}

/// One `#`-stripped nonempty query per line.
fn read_query_file(path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Served/failed counters plus the per-code failure breakdown the
/// schema-7 record archives.
#[derive(Default)]
struct Tally {
    served: usize,
    failures: usize,
    timeouts: u64,
    error_codes: BTreeMap<String, u64>,
}

/// Print one served response (or typed error) and bump the counters.
fn report(
    text: &str,
    response: &Result<ExpansionResponse, ServiceError>,
    json: bool,
    tally: &mut Tally,
) {
    match response {
        Ok(r) => {
            tally.served += 1;
            if json {
                println!("{}", serde_json::to_string(r).expect("response serializes"));
            } else {
                let titles = |terms: &[querygraph_core::service::ExpansionTerm]| {
                    terms
                        .iter()
                        .map(|t| t.title.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let hits = if r.hits.is_empty() {
                    String::new()
                } else {
                    format!(
                        "  hits=[{}]",
                        r.hits
                            .iter()
                            .map(|h| h.doc.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                println!(
                    "{:?}  entities=[{}]  features=[{}]{hits}",
                    r.query,
                    titles(&r.entities),
                    titles(&r.features),
                );
            }
        }
        Err(e) => {
            tally.failures += 1;
            if matches!(e, ServiceError::Timeout { .. }) {
                tally.timeouts += 1;
            }
            *tally.error_codes.entry(e.code().to_string()).or_insert(0) += 1;
            if json {
                // The same `{"query":…,"code":…,"error":…}` line the
                // HTTP error body carries, so error responses stay
                // cmp-identical across the socket boundary.
                println!("{}", http::expand_error_body(text, e));
            } else {
                println!("{text:?}  error: {e}");
            }
        }
    }
}

// --------------------------------------------------------------- client

fn run_client(args: &[String]) {
    reject_unknown_flags(args, &CLIENT_FLAGS, "client");
    let addr = flag_operand(args, "--connect").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let timeout = Duration::from_millis(flag_usize(args, "--timeout-ms").unwrap_or(5000) as u64);

    if args.iter().any(|a| a == "--healthz") {
        match http::get(&addr, "/healthz", timeout) {
            Ok(r) if r.status == 200 => {
                print!("{}", r.body_text());
            }
            Ok(r) => {
                eprintln!("error: /healthz answered {}", r.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {addr} unreachable: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "--statz") {
        match http::get(&addr, "/statz", timeout) {
            Ok(r) if r.status == 200 => print!("{}", r.body_text()),
            Ok(r) => {
                eprintln!("error: /statz answered {}", r.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {addr} unreachable: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let request_json = |text: &str| {
        let mut request = ExpansionRequest::new(text);
        if let Some(k) = flag_usize(args, "--top-k") {
            request = request.with_retrieval(k);
        }
        if let Some(n) = flag_usize(args, "--max-features") {
            request = request.with_max_features(n);
        }
        serde_json::to_string(&request).expect("request serializes")
    };

    if let Some(n) = flag_usize(args, "--flood") {
        // Forced overload: n concurrent one-shot connections. Every
        // one must get a clean, typed HTTP answer (200s and 503s both
        // count as clean; a hang, refused read, or malformed response
        // is a failure).
        let text = flag_operand(args, "--query").unwrap_or_else(|| "flood probe".to_string());
        let body = request_json(&text);
        let outcomes: Vec<Result<u16, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n.max(1))
                .map(|_| {
                    let body = body.clone();
                    let addr = addr.clone();
                    scope.spawn(move || {
                        http::post_json(&addr, "/expand", &body, timeout)
                            .map(|r| r.status)
                            .map_err(|e| e.to_string())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flood thread"))
                .collect()
        });
        let mut ok = 0u64;
        let mut shed = 0u64;
        let mut timeouts = 0u64;
        let mut other = 0u64;
        let mut broken = 0u64;
        for outcome in &outcomes {
            match outcome {
                Ok(200) => ok += 1,
                Ok(503) => shed += 1,
                Ok(408) => timeouts += 1,
                Ok(_) => other += 1,
                Err(e) => {
                    broken += 1;
                    eprintln!("error: flood connection failed: {e}");
                }
            }
        }
        println!(
            "{{\"requests\":{},\"ok\":{ok},\"shed\":{shed},\"timeouts\":{timeouts},\
             \"other\":{other},\"broken\":{broken}}}",
            outcomes.len()
        );
        if broken > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Workload mode: one query, a file, or the tier's seed query set.
    // Response bodies stream to stdout exactly as received, so the
    // output is byte-identical to `qgx replay --json` on the same
    // workload against the same world.
    let queries_file = flag_operand(args, "--queries");
    let seed_queries = args.iter().any(|a| a == "--seed-queries");
    let single = flag_operand(args, "--query");
    let workload: Vec<String> = if let Some(text) = single {
        vec![text]
    } else if let Some(path) = queries_file {
        read_query_file(&path)
    } else if seed_queries {
        // Regenerate the tier's query set client-side — cheap (no
        // index), and identical to what `replay --seed-queries` serves.
        let config = CliOptions::from_vec(args).config();
        let wiki = querygraph_wiki::synth::generate(&config.wiki);
        let corpus = querygraph_corpus::synth::generate_corpus(&wiki, &config.corpus);
        corpus
            .queries
            .queries
            .iter()
            .map(|q| q.keywords.clone())
            .collect()
    } else {
        eprintln!("error: qgx client needs --healthz, --statz, --flood, --query, --queries, or --seed-queries");
        std::process::exit(2);
    };
    if workload.is_empty() {
        eprintln!("error: empty workload");
        std::process::exit(2);
    }
    let repeat = flag_usize(args, "--repeat").unwrap_or(1).max(1);
    let stdout = std::io::stdout();
    for _ in 0..repeat {
        for text in &workload {
            match http::post_json(&addr, "/expand", &request_json(text), timeout) {
                Ok(response) => {
                    let mut out = stdout.lock();
                    out.write_all(&response.body).expect("stdout");
                    out.flush().expect("stdout");
                }
                Err(e) => {
                    eprintln!("error: request for {text:?} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- shard

/// A required flag's operand, or a `exit 2` usage error — a shard
/// child launched without its identity must refuse, not guess.
fn require_flag(args: &[String], name: &str) -> String {
    flag_operand(args, name).unwrap_or_else(|| {
        eprintln!("error: this subcommand requires {name} <value>");
        std::process::exit(2);
    })
}

/// One shard process: load one `QGIX` segment, verify its embedded
/// fingerprint against the supervisor's manifest fingerprint, announce
/// the bound QGRP address on stdout, and serve until stdin EOF (the
/// supervisor's drain signal), SIGTERM/SIGINT, or a `Shutdown` frame.
fn run_shard(args: &[String]) {
    use querygraph_retrieval::ondisk::{load_index_with, ArtifactSource};
    use querygraph_retrieval::remote::{server, ShardServer};
    use querygraph_retrieval::sharded::{segment_file, segment_fingerprint};

    reject_unknown_flags(args, &SHARD_FLAGS, "shard");
    // Two segment layouts behind one serving loop: the slot-keyed
    // `QGSM` sharded artifact (`--dir/--stem`) and the seq-keyed `QGSS`
    // segment store (`--segstore/--seq`). Resolve the layout flags
    // before the identity flags so a bare `qgx shard --dir …` hears
    // about its missing `--stem` first.
    enum Layout {
        Store { dir: String, seq: u64 },
        Sharded { dir: String, stem: String },
    }
    let layout = match flag_operand(args, "--segstore") {
        Some(dir) => {
            let seq = require_flag(args, "--seq");
            let seq: u64 = seq.parse().unwrap_or_else(|_| {
                eprintln!("error: --seq must be a segment sequence number, got {seq:?}");
                std::process::exit(2);
            });
            Layout::Store { dir, seq }
        }
        None => {
            let dir = require_flag(args, "--dir");
            let stem = require_flag(args, "--stem");
            Layout::Sharded { dir, stem }
        }
    };
    let shard = require_flag(args, "--shard");
    let shard: usize = shard.parse().unwrap_or_else(|_| {
        eprintln!("error: --shard must be a shard index, got {shard:?}");
        std::process::exit(2);
    });
    let fingerprint = require_flag(args, "--fingerprint");
    let fingerprint =
        u64::from_str_radix(fingerprint.trim_start_matches("0x"), 16).unwrap_or_else(|_| {
            eprintln!("error: --fingerprint must be a hex u64, got {fingerprint:?}");
            std::process::exit(2);
        });
    let listen = flag_operand(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let source = if args.iter().any(|a| a == "--mmap") {
        ArtifactSource::Mmap
    } else {
        ArtifactSource::Read
    };

    let (path, want) = match layout {
        Layout::Store { dir, seq } => (
            std::path::Path::new(&dir).join(querygraph_retrieval::segstore::segment_file(seq)),
            querygraph_retrieval::segstore::segment_fp(fingerprint, seq),
        ),
        Layout::Sharded { dir, stem } => (
            std::path::Path::new(&dir).join(segment_file(&stem, shard)),
            segment_fingerprint(fingerprint, shard),
        ),
    };
    let loaded = load_index_with(&path, source).unwrap_or_else(|e| {
        eprintln!("error: shard {shard}: cannot load {}: {e}", path.display());
        std::process::exit(1);
    });
    // The same pinning the loaders enforce: the segment must carry the
    // expected derived fingerprint, so a mis-deployed or stale segment
    // dies here, before it can answer.
    if loaded.meta_fingerprint != want {
        eprintln!(
            "error: shard {shard}: segment fingerprint mismatch \
             (expected {want:016x}, found {:016x})",
            loaded.meta_fingerprint
        );
        std::process::exit(1);
    }
    let num_docs = loaded.index.num_docs();
    let engine = querygraph_retrieval::engine::SearchEngine::with_params(
        loaded.index,
        querygraph_retrieval::lm::LmParams::default(),
    );
    engine.seed_phrase_cache(loaded.phrases);

    let qgrp = ShardServer::bind(&listen, Arc::new(engine), shard, want).unwrap_or_else(|e| {
        eprintln!("error: shard {shard}: cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    let addr = qgrp.local_addr().unwrap_or_else(|e| {
        eprintln!("error: shard {shard}: no local address: {e}");
        std::process::exit(1);
    });
    // The announce is the child's only stdout line — the supervisor
    // blocks on it; everything human-facing goes to stderr.
    server::announce(&addr);
    let _ = std::io::stdout().flush();
    log_line(&format!(
        "# qgx: shard {shard} serving {} ({num_docs} docs) on {addr}",
        path.display()
    ));

    // stdin EOF is the supervisor's drain signal: it outlives a wedged
    // socket and fires even if the parent dies without cleanup (the
    // pipe closes with it), so orphaned children exit on their own.
    let shutdown = qgrp.shutdown_flag();
    {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.lock().read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
            shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        });
    }
    #[cfg(unix)]
    {
        sig::install();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if sig::requested() {
                shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    if let Err(e) = qgrp.serve() {
        eprintln!("error: shard {shard}: serve loop failed: {e}");
        std::process::exit(1);
    }
    log_line(&format!("# qgx: shard {shard} drained"));
}

// ------------------------------------------- dump / ingest / compact

/// `qgx dump`: write a tier's synthetic corpus as a Wikipedia-format
/// XML dump. `--skip`/`--docs` slice the corpus in document order, so
/// a world can be dumped in batches and ingested incrementally — the
/// live-swap path's test fixture.
fn run_dump(args: &[String]) {
    reject_unknown_flags(args, &DUMP_FLAGS, "dump");
    let cli = CliOptions::from_vec(args);
    let out = require_flag(args, "--out");
    let skip = flag_usize(args, "--skip").unwrap_or(0);
    let take = flag_usize(args, "--docs").unwrap_or(usize::MAX);

    let config = cli.config();
    let t = Instant::now();
    let wiki = querygraph_wiki::synth::generate(&config.wiki);
    let corpus = querygraph_corpus::synth::generate_corpus(&wiki, &config.corpus);
    let total = corpus.corpus.len();
    let mut writer = querygraph_corpus::ingest::DumpWriter::create(std::path::Path::new(&out))
        .unwrap_or_else(|e| {
            eprintln!("error: cannot create {out}: {e}");
            std::process::exit(1);
        });
    for (_, doc) in corpus.corpus.iter().skip(skip).take(take) {
        if let Err(e) = writer.write_doc(doc) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    let written = writer.docs_written();
    if let Err(e) = writer.finish() {
        eprintln!("error: cannot finish {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "# qgx: dumped {written} of {total} docs (skip {skip}) to {out} in {:.3}s",
        t.elapsed().as_secs_f64()
    );
}

/// Open the tier's segment store, pinned to the tier's world
/// fingerprint.
fn open_segstore(cli: &CliOptions, dir: &str) -> querygraph_retrieval::segstore::SegStore {
    let fingerprint = querygraph_core::cache::config_fingerprint(&cli.config());
    querygraph_retrieval::segstore::SegStore::open(std::path::Path::new(dir), fingerprint)
        .unwrap_or_else(|e| {
            eprintln!("error: segment store {dir}: {e}");
            std::process::exit(1);
        })
}

/// Compact the store into `shards` segments, measuring what a live
/// server would feel: the compaction wall clock (all off the serving
/// path) and the engine-swap pause (the only serving-visible moment —
/// the new generation is fully loaded before the swap, exactly as the
/// serve watcher does it). Returns
/// `(compaction_seconds, swap_pause_us)`.
fn compact_and_measure(
    store: &mut querygraph_retrieval::segstore::SegStore,
    shards: usize,
    source: querygraph_retrieval::ondisk::ArtifactSource,
) -> (f64, f64) {
    use querygraph_retrieval::backend::{AnyEngine, ReloadableEngine};
    use querygraph_retrieval::segstore;
    use querygraph_retrieval::sharded::ShardedEngine;

    let lm = querygraph_retrieval::lm::LmParams::default();
    let fingerprint = store.manifest().fingerprint;
    // Stand in for the live server: hold the pre-compaction generation
    // in a reloadable slot so the swap we time is the real operation.
    let serving = segstore::load_generation(store.dir(), fingerprint, source)
        .ok()
        .flatten()
        .map(|generation| {
            let epoch = generation.manifest.generation_fingerprint();
            ReloadableEngine::new(
                AnyEngine::Sharded(ShardedEngine::from_shards(generation.into_engines(lm), lm)),
                epoch,
            )
        });

    let t = Instant::now();
    match segstore::compact(store, shards.max(1), source) {
        Ok(Some(_)) => {}
        Ok(None) => {
            eprintln!("error: the store has never published — nothing to compact");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: compaction failed: {e}");
            std::process::exit(1);
        }
    }
    let compaction_seconds = t.elapsed().as_secs_f64();

    let mut swap_pause_us = 0.0;
    if let Some(serving) = serving {
        if let Ok(Some(generation)) = segstore::load_generation(store.dir(), fingerprint, source) {
            let epoch = generation.manifest.generation_fingerprint();
            let engine = ShardedEngine::from_shards(generation.into_engines(lm), lm);
            let t = Instant::now();
            let old = serving.swap(AnyEngine::Sharded(engine), epoch);
            swap_pause_us = t.elapsed().as_secs_f64() * 1e6;
            drop(old);
        }
    }
    (compaction_seconds, swap_pause_us)
}

/// `qgx ingest`: stream a dump through `DumpStream` in bounded
/// memory, freezing every `--batch-docs` documents into one committed
/// `QGIX` segment. Never materializes the corpus: each document is
/// tokenized into the in-progress batch builder and dropped. With
/// `--compact n` the live set is merged into `n` segments afterwards.
fn run_ingest(args: &[String]) {
    reject_unknown_flags(args, &INGEST_FLAGS, "ingest");
    let cli = CliOptions::from_vec(args);
    let dump = require_flag(args, "--dump");
    let dir = require_flag(args, "--segstore");
    let batch_docs = flag_usize(args, "--batch-docs").unwrap_or(10_000).max(1);
    let compact_to = flag_usize(args, "--compact");

    let config = cli.config();
    let mut store = open_segstore(&cli, &dir);
    let generation_before = store.manifest().generation;
    let mut stream = querygraph_corpus::ingest::DumpStream::from_path(std::path::Path::new(&dump))
        .unwrap_or_else(|e| {
            eprintln!("error: cannot open {dump}: {e}");
            std::process::exit(1);
        });

    let t_ingest = Instant::now();
    let mut builder = querygraph_retrieval::index::IndexBuilder::new();
    let mut in_batch = 0usize;
    let mut docs: u64 = 0;
    let mut batches = 0usize;
    let commit = |builder: &mut querygraph_retrieval::index::IndexBuilder,
                  store: &mut querygraph_retrieval::segstore::SegStore| {
        let full = std::mem::replace(builder, querygraph_retrieval::index::IndexBuilder::new());
        let meta = store.commit_segment(&full.build()).unwrap_or_else(|e| {
            eprintln!("error: cannot commit segment: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "# qgx: committed segment {} ({} docs) — generation {}",
            meta.seq,
            meta.num_docs,
            store.manifest().generation
        );
    };
    for result in &mut stream {
        let doc = result.unwrap_or_else(|e| {
            eprintln!("error: {dump}: {e}");
            std::process::exit(1);
        });
        builder.add_document(&querygraph_corpus::imageclef::linking_text(&doc));
        in_batch += 1;
        docs += 1;
        if in_batch >= batch_docs {
            commit(&mut builder, &mut store);
            batches += 1;
            in_batch = 0;
        }
    }
    if in_batch > 0 {
        commit(&mut builder, &mut store);
        batches += 1;
    }
    let ingest_seconds = t_ingest.elapsed().as_secs_f64();
    let docs_per_second = docs as f64 / ingest_seconds.max(1e-9);
    let peak_buffer_bytes = stream.peak_buffer_bytes();
    let segments_before_compaction = store.manifest().segments.len();
    eprintln!(
        "# qgx: ingested {docs} docs in {batches} batch(es) over {ingest_seconds:.3}s \
         ({docs_per_second:.0} docs/s, peak stream buffer {peak_buffer_bytes} bytes); \
         generation {} → {}, {segments_before_compaction} live segment(s)",
        generation_before,
        store.manifest().generation
    );

    let (mut compaction_seconds, mut swap_pause_us) = (0.0, 0.0);
    if let Some(shards) = compact_to {
        let (wall, pause) = compact_and_measure(&mut store, shards, segstore_source(&cli));
        compaction_seconds = wall;
        swap_pause_us = pause;
        eprintln!(
            "# qgx: compacted {segments_before_compaction} → {} segment(s) in \
             {compaction_seconds:.3}s (swap pause {swap_pause_us:.0}µs)",
            store.manifest().segments.len()
        );
    }

    if let Some(path) = &cli.bench_out {
        let record = IngestRecord::new(
            &config,
            IngestSummary {
                docs_ingested: docs,
                batches,
                ingest_seconds,
                docs_per_second,
                peak_buffer_bytes,
                segments_before_compaction,
                segments_after_compaction: store.manifest().segments.len(),
                compaction_seconds,
                swap_pause_us,
                generation: store.manifest().generation,
            },
        );
        let json = serde_json::to_string_pretty(&record).expect("ingest record serializes");
        std::fs::write(path, json).expect("write ingest record");
        eprintln!("# wrote {path}");
    }
}

/// `qgx compact`: merge the store's live segments into `--shards`
/// balanced ones (default 1) and publish the new generation. A live
/// `qgx serve --segstore` on the same store hot-swaps onto it.
fn run_compact(args: &[String]) {
    reject_unknown_flags(args, &COMPACT_FLAGS, "compact");
    let cli = CliOptions::from_vec(args);
    let dir = require_flag(args, "--segstore");
    let shards = flag_usize(args, "--shards").unwrap_or(1).max(1);

    let config = cli.config();
    let mut store = open_segstore(&cli, &dir);
    let segments_before = store.manifest().segments.len();
    let (compaction_seconds, swap_pause_us) =
        compact_and_measure(&mut store, shards, segstore_source(&cli));
    eprintln!(
        "# qgx: compacted {segments_before} → {} segment(s) ({} docs) in \
         {compaction_seconds:.3}s (swap pause {swap_pause_us:.0}µs); generation {}",
        store.manifest().segments.len(),
        store.manifest().total_docs(),
        store.manifest().generation
    );

    if let Some(path) = &cli.bench_out {
        let record = IngestRecord::new(
            &config,
            IngestSummary {
                docs_ingested: 0,
                batches: 0,
                ingest_seconds: 0.0,
                docs_per_second: 0.0,
                peak_buffer_bytes: 0,
                segments_before_compaction: segments_before,
                segments_after_compaction: store.manifest().segments.len(),
                compaction_seconds,
                swap_pause_us,
                generation: store.manifest().generation,
            },
        );
        let json = serde_json::to_string_pretty(&record).expect("ingest record serializes");
        std::fs::write(path, json).expect("write ingest record");
        eprintln!("# wrote {path}");
    }
}
