//! Regenerate Fig. 9: density of extra edges vs average contribution,
//! with the OLS trend line (the paper reports a positive trend: "the
//! denser the cycle, the better its contribution").
//!
//! `cargo run --release -p querygraph-bench --bin repro_fig9 [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.fig9().render());
}
