//! Index-cache smoke check: build → persist → reload → compare.
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin repro_index_cache -- \
//!     [--tiny | --quick | --stress [--quick]] [--index-cache <dir>]
//! ```
//!
//! Runs the selected configuration **twice** against one cache
//! directory: the first (cold) run builds the inverted index and writes
//! the artifact, the second (warm) run loads it. The two serialized
//! `Report`s must be byte-identical — the cache may only buy time,
//! never change a result — and the load must beat the build by the
//! factor the ROADMAP promises (≥ 5×). Exits non-zero when either
//! fails; CI's `index-cache` job runs this on every PR.

use querygraph_bench::CliOptions;
use querygraph_core::cache::IndexSource;
use querygraph_core::experiment::Experiment;
use querygraph_retrieval::ondisk::fnv1a;

fn main() {
    let options = CliOptions::from_args();
    let config = options.config();
    let cache_dir = options.index_cache.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("querygraph-index-cache-{}", std::process::id()))
    });
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");
    // Start cold even if the directory already holds an artifact.
    let artifact = querygraph_core::cache::artifact_path(&cache_dir, &config);
    std::fs::remove_file(&artifact).ok();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut fingerprints = Vec::new();
    let mut stats = Vec::new();
    for pass in ["cold", "warm"] {
        let (experiment, build) = Experiment::build_with_cache(&config, Some(&cache_dir));
        eprintln!(
            "# {pass}: world {:.3}s, index {} (build {:.3}s, write {:.3}s, load {:.3}s)",
            build.world_seconds,
            build.index_source.name(),
            build.index_build_seconds,
            build.index_write_seconds,
            build.index_load_seconds,
        );
        let json =
            serde_json::to_string(&experiment.run_parallel(threads)).expect("report serializes");
        fingerprints.push((json.len(), fnv1a(json.as_bytes())));
        stats.push(build);
    }

    let (cold, warm) = (&stats[0], &stats[1]);
    let mut failed = false;
    if cold.index_source != IndexSource::Built || warm.index_source != IndexSource::Loaded {
        eprintln!(
            "FAIL: expected cold=built/warm=loaded, got cold={}/warm={}",
            cold.index_source.name(),
            warm.index_source.name()
        );
        failed = true;
    }
    if fingerprints[0] != fingerprints[1] {
        eprintln!(
            "FAIL: loaded-index report diverged: cold len={} fnv={:#018x}, warm len={} fnv={:#018x}",
            fingerprints[0].0, fingerprints[0].1, fingerprints[1].0, fingerprints[1].1
        );
        failed = true;
    }
    let speedup = cold.index_build_seconds / warm.index_load_seconds.max(1e-9);
    println!(
        "index-cache smoke: report len={} fnv={:#018x}; \
         build {:.3}s vs load {:.3}s ({speedup:.1}x)",
        fingerprints[0].0, fingerprints[0].1, cold.index_build_seconds, warm.index_load_seconds,
    );
    if speedup < 5.0 {
        eprintln!(
            "FAIL: index load must be ≥ 5x faster than build, got {speedup:.1}x \
             (build {:.4}s, load {:.4}s)",
            cold.index_build_seconds, warm.index_load_seconds
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
