//! Regenerate Table 2: ground-truth precision statistics (min,
//! quartiles, max of top-1/5/10/15 precision over all queries).
//!
//! `cargo run --release -p querygraph-bench --bin repro_table2 [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.table2().render());
}
