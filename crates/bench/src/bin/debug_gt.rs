//! Developer diagnostics: per-query ground-truth behaviour at quick
//! scale. Not part of the reproduction surface.

use querygraph_bench::quick_config;
use querygraph_core::experiment::Experiment;
use querygraph_link::EntityLinker;

fn main() {
    let cfg = quick_config();
    let exp = Experiment::build(&cfg);
    let linker = EntityLinker::new(&exp.wiki.kb);
    for qi in 0..exp.corpus.queries.len() {
        let a = exp.analyze_query(&linker, qi);
        let far_topic = (qi + exp.wiki.topics.len() / 2) % exp.wiki.topics.len();
        let far_in_a = a
            .ground_truth
            .expansion
            .iter()
            .filter(|x| exp.wiki.topics[far_topic].articles.contains(x))
            .count();
        println!(
            "q{:<3} |L(q.k)|={} |L(q.D)|={:<3} |A'|={:<3} far_in_A'={} base={:.3} gt={:.3} prec={:?} nodes={} size%={:.2} cycles={}",
            a.query_id,
            a.lqk.len(),
            a.lqd_size,
            a.ground_truth.expansion.len(),
            far_in_a,
            a.ground_truth.baseline_quality,
            a.ground_truth.quality,
            a.ground_truth.precisions.map(|p| (p * 100.0).round() / 100.0),
            a.lcc.total_nodes,
            a.lcc.size_ratio,
            a.cycles.len(),
        );
    }
}
