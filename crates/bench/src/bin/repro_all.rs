//! Regenerate every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin repro_all -- \
//!     [--tiny | --quick | --stress [--quick]] [--index-cache <dir>] \
//!     [--shards <n>] [--mmap] [--bench-out <path>] [--json out.json]
//! ```
//!
//! Prints paper-vs-measured for Tables 2–4, Figs. 5, 6, 7a, 7b, 9 and
//! the §3 scalar statistics. Every run also archives the pipeline's
//! machine-readable timing record — `BENCH_seed.json` for the seed
//! tiers, `BENCH_stress.json` for `--stress` (override the path with
//! `--bench-out <path>`) — so successive PRs accumulate a perf
//! trajectory. With `--index-cache <dir>` the inverted index is
//! persisted there on the first run and loaded (instead of rebuilt) on
//! subsequent runs; the record's `index_build_seconds` /
//! `index_load_seconds` track the speedup. With `--json <path>` the
//! full machine-readable [`querygraph_core::Report`] is written too.
//! With `--shards <n>` the world runs on the doc-partitioned sharded
//! backend (and segmented artifact layout) — the `Report` is
//! byte-identical to the monolithic run at any shard count; `--mmap`
//! maps artifacts instead of reading them.

use querygraph_bench::{BenchRecord, CliOptions};

fn main() {
    let options = CliOptions::from_args();
    let config = options.config();
    let (report, summary, build) = querygraph_bench::report_and_summary_with(
        &config,
        options.index_cache.as_deref(),
        &options.world_options(),
    );
    print!("{}", report.render_all());

    let bench_path = options.bench_path();
    let record = BenchRecord::new(&config, &build, summary);
    let json = serde_json::to_string_pretty(&record).expect("bench record serializes");
    std::fs::write(bench_path, json).expect("write bench record");
    eprintln!("# wrote {bench_path}");

    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            std::fs::write(path, json).expect("write report JSON");
            eprintln!("# wrote {path}");
        }
    }
}
