//! Regenerate every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin repro_all [-- --quick | --tiny] [-- --json out.json]
//! ```
//!
//! Prints paper-vs-measured for Tables 2–4, Figs. 5, 6, 7a, 7b, 9 and
//! the §3 scalar statistics. Every run also archives the pipeline's
//! machine-readable timing record to `BENCH_seed.json` (override the
//! path with `--bench-out <path>`) so successive PRs accumulate a perf
//! trajectory. With `--json <path>` the full machine-readable
//! [`querygraph_core::Report`] is written too.

use querygraph_bench::BenchRecord;

fn main() {
    let config = querygraph_bench::config_from_args();
    let (report, summary, build_seconds) = querygraph_bench::report_and_summary(&config);
    print!("{}", report.render_all());

    let args: Vec<String> = std::env::args().collect();
    let bench_path = match args.iter().position(|a| a == "--bench-out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --bench-out requires a path");
            std::process::exit(2);
        }),
        None => "BENCH_seed.json".to_string(),
    };
    let record = BenchRecord::new(&config, build_seconds, summary);
    let json = serde_json::to_string_pretty(&record).expect("bench record serializes");
    std::fs::write(&bench_path, json).expect("write bench record");
    eprintln!("# wrote {bench_path}");

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            std::fs::write(path, json).expect("write report JSON");
            eprintln!("# wrote {path}");
        }
    }
}
