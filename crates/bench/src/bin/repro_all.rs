//! Regenerate every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p querygraph-bench --bin repro_all [-- --quick] [-- --json out.json]
//! ```
//!
//! Prints paper-vs-measured for Tables 2–4, Figs. 5, 6, 7a, 7b, 9 and
//! the §3 scalar statistics. With `--json <path>` the full
//! machine-readable [`querygraph_core::Report`] is also written.

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.render_all());

    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            std::fs::write(path, json).expect("write report JSON");
            eprintln!("# wrote {path}");
        }
    }
}
