//! Regenerate Table 3: largest-connected-component statistics of the
//! query graphs (%size, %query nodes, %articles, %categories,
//! expansion ratio).
//!
//! `cargo run --release -p querygraph-bench --bin repro_table3 [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.table3().render());
}
