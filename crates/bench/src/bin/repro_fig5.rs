//! Regenerate Fig. 5: average retrieval contribution (%) of cycles by
//! cycle length.
//!
//! `cargo run --release -p querygraph-bench --bin repro_fig5 [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.fig5().render());
}
