//! Regenerate Fig. 6: average number of cycles per query graph by cycle
//! length.
//!
//! `cargo run --release -p querygraph-bench --bin repro_fig6 [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.fig6().render());
}
