//! Regenerate Table 4: average precision when the articles of cycles of
//! given lengths (2 / 3 / 4 / 5 and their unions) are used as expansion
//! features.
//!
//! `cargo run --release -p querygraph-bench --bin repro_table4 [-- --quick]`

fn main() {
    let report = querygraph_bench::report_for(&querygraph_bench::config_from_args());
    print!("{}", report.table4().render());
}
