//! Thread-scaling benchmark of `retrieval::par::parallel_map` — the
//! one work-stealing runner every parallel consumer in the workspace
//! shares (`run_queries`, `expand_batch`, shard scatter-gather,
//! segment loading).
//!
//! Two shapes at 1/2/4/8 workers:
//!
//! * `scaling/<t>`: 64 CPU-bound items (~20 µs of integer mixing
//!   each). On an N-core box, throughput should rise ~linearly up to
//!   N workers and flatten past it; on a 1-core box every row
//!   measures the same work plus steal/spawn overhead, which is
//!   exactly the number to watch.
//! * `overhead/<t>`: a single trivial item, isolating the fixed cost
//!   of spinning up (or, for `threads == 1`, skipping) the scoped
//!   worker pool.
//!
//! The checked XOR of the results pins `parallel_map`'s determinism
//! contract while keeping the compiler from eliding the work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use querygraph_retrieval::par::parallel_map;
use std::hint::black_box;

/// ~20 µs of dependency-chained integer mixing — CPU-bound, no
/// allocation, deterministic in `i`.
fn work_unit(i: usize) -> u64 {
    let mut x = (i as u64) ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..20_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 29;
    }
    x
}

fn bench_thread_scaling(c: &mut Criterion) {
    // The expected fold of the fixed workload, computed once; every
    // iteration must reproduce it regardless of the steal schedule.
    let expected = (0..64).map(work_unit).fold(0u64, |a, v| a ^ v);
    let mut group = c.benchmark_group("par/scaling");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = parallel_map(64, threads, |i| work_unit(black_box(i)));
                    let folded = out.iter().fold(0u64, |a, v| a ^ v);
                    assert_eq!(folded, expected, "steal schedule changed the output");
                    black_box(folded)
                });
            },
        );
    }
    group.finish();
}

fn bench_spawn_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("par/overhead");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                // Workers are capped at n, so a single item always runs
                // inline — this times the dispatch decision itself.
                b.iter(|| black_box(parallel_map(1, threads, |i| i as u64 + 1)[0]));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_spawn_overhead);
criterion_main!(benches);
