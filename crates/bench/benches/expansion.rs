//! Expansion-engine latency: the paper's closing challenge is that
//! "query expansion techniques are expected to respond in real time".
//! Measures the cycle-based expander (bounded-neighbourhood cycle
//! enumeration + ranking) against the direct-link baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use querygraph_core::expansion::{CycleExpander, DirectLinkExpander, Expander};
use querygraph_wiki::synth::{generate, SynthWiki, SynthWikiConfig};
use std::hint::black_box;

fn world() -> SynthWiki {
    let mut cfg = SynthWikiConfig::small();
    cfg.num_topics = 10;
    cfg.articles_per_topic = 25;
    generate(&cfg)
}

fn bench_expanders(c: &mut Criterion) {
    let wiki = world();
    let hub = wiki.topics[0].hub;
    let sat = wiki.topics[0].articles[3];
    let query = [hub, sat];

    let cycles = CycleExpander::default();
    let links = DirectLinkExpander { max_features: 10 };

    let mut group = c.benchmark_group("expansion");
    group.bench_function("cycle_expander", |b| {
        b.iter(|| black_box(cycles.expand(&wiki.kb, black_box(&query))).len());
    });
    group.bench_function("direct_link_expander", |b| {
        b.iter(|| black_box(links.expand(&wiki.kb, black_box(&query))).len());
    });
    group.finish();
}

criterion_group!(benches, bench_expanders);
criterion_main!(benches);
