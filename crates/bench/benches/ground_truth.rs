//! Ground-truth hill-climb benchmark (§2.2): the full ADD/REMOVE/SWAP
//! search for one query, the dominant cost of building the paper's
//! ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use querygraph_core::experiment::{Experiment, ExperimentConfig};
use querygraph_link::EntityLinker;
use std::hint::black_box;

fn bench_hill_climb(c: &mut Criterion) {
    let exp = Experiment::build(&ExperimentConfig::tiny());
    let linker = EntityLinker::new(&exp.wiki.kb);
    let mut group = c.benchmark_group("ground_truth");
    group.sample_size(10);
    group.bench_function("analyze_one_query", |b| {
        b.iter(|| {
            let a = exp.analyze_query(black_box(&linker), 0);
            black_box(a.ground_truth.evaluations)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hill_climb);
criterion_main!(benches);
