//! Search-engine benchmarks: index construction, phrase queries, and
//! the multi-phrase ground-truth query shape of §2.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use querygraph_corpus::imageclef::linking_text;
use querygraph_corpus::synth::{generate_corpus, SynthCorpusConfig};
use querygraph_retrieval::engine::{SearchEngine, SearchMode};
use querygraph_retrieval::index::IndexBuilder;
use querygraph_retrieval::query_lang::{parse, QueryNode};
use querygraph_wiki::synth::{generate, SynthWikiConfig};
use std::hint::black_box;

fn corpus_texts() -> Vec<String> {
    let wiki = generate(&SynthWikiConfig::small());
    let mut cfg = SynthCorpusConfig::small();
    cfg.noise_docs = 400;
    let sc = generate_corpus(&wiki, &cfg);
    sc.corpus.iter().map(|(_, d)| linking_text(d)).collect()
}

fn build_engine(texts: &[String]) -> SearchEngine {
    let mut b = IndexBuilder::new();
    for t in texts {
        b.add_document(t);
    }
    SearchEngine::new(b.build())
}

fn bench_index_build(c: &mut Criterion) {
    let texts = corpus_texts();
    c.bench_function("retrieval/index_build", |b| {
        b.iter(|| {
            let mut ib = IndexBuilder::new();
            for t in &texts {
                ib.add_document(black_box(t));
            }
            black_box(ib.build().num_terms())
        });
    });
}

fn bench_queries(c: &mut Criterion) {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    let queries = [
        ("term", "harbor"),
        ("phrase2", "#1(northern temple)"),
        (
            "combine4",
            "#combine(#1(northern temple) #1(temple gate) harbor glacier)",
        ),
    ];
    let mut group = c.benchmark_group("retrieval/search");
    for (name, q) in queries {
        let node = parse(q).expect("query parses");
        group.bench_with_input(BenchmarkId::from_parameter(name), &node, |b, node| {
            b.iter(|| black_box(engine.search(black_box(node), 15).len()));
        });
    }
    group.finish();
}

fn bench_pruned_vs_exact(c: &mut Criterion) {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    // Bare-term #combine: the broad-candidate shape where block-max
    // pruning earns its keep (phrase queries have selective candidate
    // sets, so exact and pruned converge there).
    let node = parse("#combine(harbor glacier temple northern gate market)").expect("parses");
    let mut group = c.benchmark_group("retrieval/pruned_vs_exact");
    for mode in [SearchMode::Exact, SearchMode::Pruned] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &node,
            |b, node| {
                b.iter(|| black_box(engine.search_with(black_box(node), 10, mode).len()));
            },
        );
    }
    group.finish();
}

fn bench_ground_truth_query_shape(c: &mut Criterion) {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    // An 8-title exact-phrase #combine — the shape the hill climb emits.
    let titles = [
        "harbor",
        "northern temple",
        "temple gate",
        "temple of valdria",
        "southern temple",
        "temple market",
        "glacier",
        "eastern orchard",
    ];
    let node = QueryNode::phrases_of_titles(&titles);
    c.bench_function("retrieval/gt_query_8_phrases", |b| {
        b.iter(|| black_box(engine.search(black_box(&node), 15).len()));
    });
}

criterion_group!(
    benches,
    bench_index_build,
    bench_queries,
    bench_pruned_vs_exact,
    bench_ground_truth_query_shape
);
criterion_main!(benches);
