//! Entity-linking throughput (§2.1): dictionary construction and the
//! greedy longest-substring scan with and without the synonym pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use querygraph_corpus::imageclef::linking_text;
use querygraph_corpus::synth::{generate_corpus, SynthCorpusConfig};
use querygraph_link::EntityLinker;
use querygraph_wiki::synth::{generate, SynthWiki, SynthWikiConfig};
use std::hint::black_box;

fn world() -> (SynthWiki, Vec<String>) {
    let wiki = generate(&SynthWikiConfig::small());
    let sc = generate_corpus(&wiki, &SynthCorpusConfig::small());
    let texts: Vec<String> = sc.corpus.iter().map(|(_, d)| linking_text(d)).collect();
    (wiki, texts)
}

fn bench_dictionary_build(c: &mut Criterion) {
    let (wiki, _) = world();
    c.bench_function("linking/dictionary_build", |b| {
        b.iter(|| {
            black_box(EntityLinker::new(black_box(&wiki.kb)))
                .dictionary()
                .len()
        });
    });
}

fn bench_link_documents(c: &mut Criterion) {
    let (wiki, texts) = world();
    let total_bytes: u64 = texts.iter().map(|t| t.len() as u64).sum();
    let linker = EntityLinker::new(&wiki.kb);
    let linker_nosyn = EntityLinker::new(&wiki.kb).without_synonyms();
    let mut group = c.benchmark_group("linking/documents");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("with_synonyms", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += linker.link_articles(black_box(t)).len();
            }
            black_box(n)
        });
    });
    group.bench_function("without_synonyms", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += linker_nosyn.link_articles(black_box(t)).len();
            }
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dictionary_build, bench_link_documents);
criterion_main!(benches);
