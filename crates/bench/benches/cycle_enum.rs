//! Cycle-enumeration kernel benchmarks — the paper's §4 performance
//! challenge ("the computation of all the dense cycles of a given
//! length … is computationally expensive … an average time of 6 minutes
//! per query"). Measures how enumeration cost grows with the maximum
//! cycle length and with graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use querygraph_graph::cycles::CycleFinder;
use querygraph_graph::TypedGraph;
use querygraph_wiki::synth::{generate, SynthWikiConfig};
use std::hint::black_box;

/// A query-graph-sized subgraph: one topic's neighbourhood.
fn topic_graph(articles_per_topic: usize) -> TypedGraph {
    let mut cfg = SynthWikiConfig::small();
    cfg.num_topics = 3;
    cfg.articles_per_topic = articles_per_topic;
    cfg.intra_links_per_article = 4.0;
    let wiki = generate(&cfg);
    wiki.kb.graph().clone()
}

fn bench_by_max_len(c: &mut Criterion) {
    let g = topic_graph(25);
    let mut group = c.benchmark_group("cycles/by_max_len");
    for max_len in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(max_len), &max_len, |b, &l| {
            b.iter(|| {
                let counts = CycleFinder::new(black_box(&g)).max_len(l).count_by_length();
                black_box(counts)
            });
        });
    }
    group.finish();
}

fn bench_by_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycles/by_graph_size");
    group.sample_size(20);
    for n in [10usize, 20, 40] {
        let g = topic_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n * 3), &g, |b, g| {
            b.iter(|| {
                let counts = CycleFinder::new(black_box(g)).max_len(5).count_by_length();
                black_box(counts)
            });
        });
    }
    group.finish();
}

fn bench_anchored(c: &mut Criterion) {
    let g = topic_graph(25);
    c.bench_function("cycles/anchored_on_hub", |b| {
        b.iter(|| {
            let cycles = CycleFinder::new(black_box(&g))
                .max_len(5)
                .require_any_of(&[0])
                .find_all();
            black_box(cycles.len())
        });
    });
}

criterion_group!(
    benches,
    bench_by_max_len,
    bench_by_graph_size,
    bench_anchored
);
criterion_main!(benches);
