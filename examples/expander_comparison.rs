//! Using the library as a downstream system: compare query-expansion
//! engines on a synthetic benchmark — the paper's conclusions as a
//! working expander versus the related-work baselines.
//!
//! ```text
//! cargo run --release --example expander_comparison
//! ```

use querygraph::core::expansion::{
    expanded_titles, CycleExpander, CycleExpanderConfig, DirectLinkExpander, Expander,
    NoopExpander, RedirectExpander,
};
use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::link::EntityLinker;
use querygraph::retrieval::metrics::{average_quality, precisions};
use querygraph::retrieval::query_lang::QueryNode;

fn main() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let kb = &experiment.wiki.kb;
    let linker = EntityLinker::new(kb);

    let expanders: Vec<(&str, Box<dyn Expander>)> = vec![
        ("none", Box::new(NoopExpander)),
        (
            "direct-links",
            Box::new(DirectLinkExpander { max_features: 8 }),
        ),
        ("redirects", Box::new(RedirectExpander { max_features: 8 })),
        ("cycles (paper)", Box::new(CycleExpander::default())),
        (
            "cycles, no category band",
            Box::new(CycleExpander {
                config: CycleExpanderConfig {
                    category_ratio_band: (0.0, 1.0),
                    ..CycleExpanderConfig::default()
                },
            }),
        ),
    ];

    println!(
        "Expander comparison over {} queries\n",
        experiment.corpus.queries.len()
    );
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "expander", "O", "P@1", "P@5", "P@10", "P@15"
    );
    for (name, expander) in &expanders {
        let mut o_sum = 0.0;
        let mut p_sum = [0.0f64; 4];
        for query in experiment.corpus.queries.iter() {
            let lqk = linker.link_articles(&query.keywords);
            let features = expander.expand(kb, &lqk);
            let titles = expanded_titles(kb, &lqk, &features);
            let node = QueryNode::phrases_of_titles(&titles);
            let hits = experiment.engine.search(&node, 15);
            let relevant: Vec<u32> = query.relevant.iter().map(|d| d.0).collect();
            o_sum += average_quality(&hits, &relevant);
            let p = precisions(&hits, &relevant);
            for i in 0..4 {
                p_sum[i] += p[i];
            }
        }
        let n = experiment.corpus.queries.len() as f64;
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            o_sum / n,
            p_sum[0] / n,
            p_sum[1] / n,
            p_sum[2] / n,
            p_sum[3] / n
        );
    }

    println!(
        "\nThe cycle expander operationalizes the paper's finding: dense cycles\n\
         with a category ratio around 30% carry the best expansion features;\n\
         dropping the category-ratio band lets Fig. 8-style traps through."
    );
}
