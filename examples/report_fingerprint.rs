//! Print the FNV-1a fingerprints of the serialized `Report` for the
//! tiny and seed (paper) configurations.
//!
//! `tests/ground_truth_fastpath.rs` pins these values: any PR that
//! *intends* to change reproduction results must rerun this
//! (`cargo run --release --example report_fingerprint`) and update the
//! pinned constants — and say so in the PR description.

use querygraph::core::experiment::{Experiment, ExperimentConfig};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn main() {
    for (name, config) in [
        ("tiny", ExperimentConfig::tiny()),
        ("paper", ExperimentConfig::default_paper()),
    ] {
        let experiment = Experiment::build(&config);
        let json = serde_json::to_string(&experiment.run()).expect("report serializes");
        println!(
            "{name}: len={} fnv1a={:#018x}",
            json.len(),
            fnv1a(json.as_bytes())
        );
    }
}
