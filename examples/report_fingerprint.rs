//! Print the FNV-1a fingerprints of the serialized `Report` for the
//! tiny and seed (paper) configurations.
//!
//! `tests/ground_truth_fastpath.rs` pins these values: any PR that
//! *intends* to change reproduction results must rerun this
//! (`cargo run --release --example report_fingerprint`) and update the
//! pinned constants — and say so in the PR description.

use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::retrieval::ondisk::fnv1a;

fn main() {
    for (name, config) in [
        ("tiny", ExperimentConfig::tiny()),
        ("paper", ExperimentConfig::default_paper()),
    ] {
        let experiment = Experiment::build(&config);
        let json = serde_json::to_string(&experiment.run()).expect("report serializes");
        println!(
            "{name}: len={} fnv1a={:#018x}",
            json.len(),
            fnv1a(json.as_bytes())
        );
    }
}
