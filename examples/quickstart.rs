//! Quickstart: the whole reproduction pipeline in one page.
//!
//! Builds a miniature synthetic world (Wikipedia + ImageCLEF-like
//! corpus), runs the paper's §2–§3 pipeline for every query, and prints
//! the aggregated tables.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use querygraph::core::experiment::{Experiment, ExperimentConfig};

fn main() {
    // `tiny()` finishes in well under a second; swap in
    // `ExperimentConfig::default_paper()` for the full 50-query run.
    let config = ExperimentConfig::tiny();
    println!(
        "Building synthetic world: {} topics, {} queries (wiki seed {:#x})…",
        config.wiki.num_topics, config.corpus.num_queries, config.wiki.seed
    );
    let experiment = Experiment::build(&config);
    println!(
        "  knowledge base: {} articles ({} redirects), {} categories",
        experiment.wiki.kb.num_articles(),
        experiment
            .wiki
            .kb
            .articles()
            .filter(|&a| experiment.wiki.kb.is_redirect(a))
            .count(),
        experiment.wiki.kb.num_categories()
    );
    println!("  corpus: {} documents", experiment.corpus.corpus.len());

    let report = experiment.run();

    println!("\nPer-query ground truth (§2.2):");
    for q in &report.per_query {
        println!(
            "  query {:>2} {:<40} baseline O = {:.3} → expanded O = {:.3} with |A'| = {}",
            q.query_id,
            format!("{:?}", q.keywords),
            q.ground_truth.baseline_quality,
            q.ground_truth.quality,
            q.ground_truth.expansion.len()
        );
    }

    println!("\n{}", report.table2().render());
    println!("{}", report.fig6().render());
    println!("{}", report.scalar_stats().render());
}
