//! The paper's worked example: query #90, **"gondola in venice"**
//! (Figs. 3, 4 and 8), on the hand-built Venice mini-Wikipedia.
//!
//! Walks through entity linking, query-graph assembly, cycle
//! enumeration, and shows the three example cycles of Fig. 4 plus the
//! category-free `sheep–quarantine–anthrax` trap of Fig. 8.
//!
//! ```text
//! cargo run --example venice_gondola
//! ```

use querygraph::core::cycle_analysis::enumerate_cycles;
use querygraph::core::query_graph::assemble;
use querygraph::link::EntityLinker;
use querygraph::wiki::fixture::{venice_mini_wiki, VENICE_QUERY};

fn main() {
    let kb = venice_mini_wiki();
    println!(
        "Venice mini-Wikipedia: {} articles, {} categories",
        kb.num_articles(),
        kb.num_categories()
    );

    // §2.1 — entity linking of the query keywords.
    let linker = EntityLinker::new(&kb);
    let lqk = linker.link_articles(VENICE_QUERY);
    println!("\nL(q.k) for {VENICE_QUERY:?}:");
    for &a in &lqk {
        println!("  ▲ {}", kb.title(a));
    }

    // §2.3 — assemble the query graph with the expansion features the
    // paper's Fig. 3 shows around the query.
    let expansion: Vec<_> = [
        "Grand Canal (Venice)",
        "Palazzo Bembo",
        "Bridge of Sighs",
        "Cannaregio",
        "Gondolier",
        "Regatta",
    ]
    .iter()
    .map(|t| kb.article_by_title(t).expect("fixture title"))
    .collect();
    let qg = assemble(&kb, &lqk, &expansion);
    println!(
        "\nQuery graph G(q): {} nodes ({} articles, {} categories)",
        qg.sub.node_count(),
        qg.article_nodes().len(),
        qg.category_nodes().len()
    );
    let lcc = qg.lcc_stats();
    println!(
        "  largest component: {:.0}% of nodes, TPR {:.2}, expansion ratio {:.1}",
        lcc.size_ratio * 100.0,
        lcc.tpr,
        lcc.expansion_ratio
    );

    // §3 — the cycles through the query articles.
    let cycles = enumerate_cycles(&qg, &kb, 5, usize::MAX);
    println!("\nCycles through L(q.k), by length:");
    for len in 2..=5 {
        let n = cycles.iter().filter(|c| c.len == len).count();
        println!("  length {len}: {n}");
    }

    println!("\nFig. 4 example cycles:");
    for c in &cycles {
        let labels: Vec<&str> = c
            .local_nodes
            .iter()
            .map(|&l| kb.node_label(qg.sub.parent_of(l)))
            .collect();
        let interesting = (c.len == 2 && labels.contains(&"Cannaregio"))
            || (c.len == 3 && labels.contains(&"Palazzo Bembo"))
            || (c.len == 4
                && labels.contains(&"Bridge of Sighs")
                && labels.contains(&"Visitor attractions in Venice"));
        if interesting {
            println!(
                "  len {} | categories {}/{} | density {} | {}",
                c.len,
                c.categories,
                c.len,
                c.extra_edge_density
                    .map(|d| format!("{d:.2}"))
                    .unwrap_or_else(|| "n/a".into()),
                labels.join(" — ")
            );
        }
    }

    // Fig. 8 — the category-free trap, reachable from "sheep".
    let sheep = kb.article_by_title("Sheep").expect("fixture");
    let trap_exp: Vec<_> = ["Quarantine", "Anthrax"]
        .iter()
        .map(|t| kb.article_by_title(t).expect("fixture"))
        .collect();
    let trap_graph = assemble(&kb, &[sheep], &trap_exp);
    let trap_cycles = enumerate_cycles(&trap_graph, &kb, 5, usize::MAX);
    println!("\nFig. 8 trap (query article \"Sheep\"):");
    for c in trap_cycles.iter().filter(|c| c.len == 3) {
        let labels: Vec<&str> = c
            .local_nodes
            .iter()
            .map(|&l| kb.node_label(trap_graph.sub.parent_of(l)))
            .collect();
        println!(
            "  len 3, category ratio {:.2}: {} — a category-free cycle that\n\
             \x20 would introduce \"anthrax\" as an expansion feature for \"sheep\".",
            c.category_ratio,
            labels.join(" — ")
        );
    }
}
