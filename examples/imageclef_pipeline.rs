//! The document side end to end: parse an ImageCLEF XML metadata file
//! (the paper's Fig. 2 example), extract the linking text, entity-link
//! it, and run a retrieval round against a small indexed corpus.
//!
//! ```text
//! cargo run --example imageclef_pipeline
//! ```

use querygraph::corpus::imageclef::{linking_text, parse_image_doc};
use querygraph::corpus::synth::{generate_corpus, SynthCorpusConfig};
use querygraph::link::EntityLinker;
use querygraph::retrieval::engine::SearchEngine;
use querygraph::retrieval::index::IndexBuilder;
use querygraph::retrieval::metrics::precisions;
use querygraph::retrieval::query_lang::QueryNode;
use querygraph::wiki::synth::{generate, SynthWikiConfig};

/// The paper's Fig. 2 document (abridged).
const FIG2_XML: &str = r#"<?xml version="1.0" encoding="UTF-8" ?>
<image id="82531" file="images/9/82531.jpg">
  <name>Field Hamois Belgium Luc Viatour.jpg</name>
  <text xml:lang="en">
    <description>Summer field in Belgium (Hamois). The blue flower is Centaurea cyanus.</description>
    <comment />
    <caption article="text/en/1/302887">Summer field in Belgium (Hamois).</caption>
  </text>
  <text xml:lang="de">
    <description>Ein blühendes Feld in Belgien.</description>
    <comment />
  </text>
  <comment>({{Information |Description= Flowers in Belgium |Source= Flickr |Date= 1/1/85 }})</comment>
  <license>GFDL</license>
</image>"#;

fn main() {
    // 1. Parse the Fig. 2 document and extract its linking text.
    let doc = parse_image_doc(FIG2_XML).expect("valid ImageCLEF XML");
    println!("Parsed document id={} file={}", doc.id, doc.file);
    let text = linking_text(&doc);
    println!("Linking text (regions ①–③ of Fig. 2):\n  {text}\n");

    // 2. Build a synthetic world and index every document's linking
    //    text, exactly as the experiment pipeline does.
    let wiki = generate(&SynthWikiConfig::small());
    let sc = generate_corpus(&wiki, &SynthCorpusConfig::small());
    let mut ib = IndexBuilder::new();
    for (_, d) in sc.corpus.iter() {
        ib.add_document(&linking_text(d));
    }
    let engine = SearchEngine::new(ib.build());
    println!(
        "Indexed {} documents, {} distinct terms, avg length {:.1} tokens",
        engine.index().num_docs(),
        engine.index().num_terms(),
        engine.index().avg_doc_len()
    );

    // 3. Entity-link a query and retrieve.
    let linker = EntityLinker::new(&wiki.kb);
    let query = &sc.queries.queries[0];
    let lqk = linker.link_articles(&query.keywords);
    println!("\nQuery {:?} links to:", query.keywords);
    for &a in &lqk {
        println!("  {}", wiki.kb.title(a));
    }

    let titles: Vec<&str> = lqk.iter().map(|&a| wiki.kb.title(a)).collect();
    let node = QueryNode::phrases_of_titles(&titles);
    println!("\nINDRI query: {node}");
    let hits = engine.search(&node, 10);
    let relevant: Vec<u32> = query.relevant.iter().map(|d| d.0).collect();
    let p = precisions(&hits, &relevant);
    println!("Top-10 results (✓ = relevant):");
    for h in &hits {
        let mark = if relevant.binary_search(&h.doc).is_ok() {
            "✓"
        } else {
            " "
        };
        println!(
            "  {mark} doc {:<5} score {:>8.3}  {}",
            h.doc,
            h.score,
            sc.corpus.doc(querygraph::corpus::DocId(h.doc)).id
        );
    }
    println!(
        "\nPrecision: P@1 {:.2}  P@5 {:.2}  P@10 {:.2}  P@15 {:.2}",
        p[0], p[1], p[2], p[3]
    );
}
