//! Serving-facade quickstart: expand one ad-hoc query without
//! constructing an `Experiment` or computing ground truths.
//!
//! ```text
//! cargo run --release --example expand_query [-- "your query text"]
//! ```
//!
//! Builds (first run) or loads (subsequent runs) the tiny world's index
//! from `.index-cache/`, constructs a `QueryExpander` once, and serves
//! one query end to end: entity linking → cycle-based expansion → the
//! INDRI query → top-5 retrieval. The CI `service-smoke` job runs this
//! binary and `qgx` to prove the serving path stays alive.

use querygraph::core::config::ExperimentConfig;
use querygraph::core::service::{ExpansionRequest, ServingWorld};
use std::time::Instant;

fn main() {
    let config = ExperimentConfig::tiny();
    let cache_dir = std::path::Path::new(".index-cache");

    // World + index, once per process (microsecond queries after this).
    let world = ServingWorld::open(&config, Some(cache_dir));
    println!(
        "world ready: {} articles, index {} (world {:.3}s, build {:.3}s, load {:.3}s)",
        world.wiki.kb.num_articles(),
        world.stats.index_source.name(),
        world.stats.world_seconds,
        world.stats.index_build_seconds,
        world.stats.index_load_seconds,
    );
    let expander = world.expander();

    // Default query: two titles from the synthetic world, so the
    // example works on any seed. Pass your own text as the first arg.
    let query = std::env::args().nth(1).unwrap_or_else(|| {
        let kb = &world.wiki.kb;
        let mut mains = kb.main_articles();
        let a = mains.next().expect("world has articles");
        let b = mains.nth(6).unwrap_or(a);
        format!("{} and {}", kb.title(a), kb.title(b))
    });

    let t = Instant::now();
    let response = expander
        .expand(&ExpansionRequest::new(&query).with_retrieval(5))
        .unwrap_or_else(|e| {
            eprintln!("typed serving error: {e}");
            std::process::exit(1);
        });
    let micros = t.elapsed().as_secs_f64() * 1e6;

    println!("\nquery: {:?} ({micros:.0} µs)", response.query);
    println!("linked entities (L(q.k)):");
    for term in &response.entities {
        println!("  {:>4}  {}", term.article.to_string(), term.title);
    }
    println!("expansion features (cycle strategy):");
    for term in &response.features {
        println!("  {:>4}  {}", term.article.to_string(), term.title);
    }
    println!("INDRI query: {}", response.expanded_query);
    println!("top documents:");
    for hit in &response.hits {
        println!("  doc {:>5}  score {:.4}", hit.doc, hit.score);
    }
    assert!(
        !response.features.is_empty(),
        "the tiny world's titles must produce expansion features"
    );
}
